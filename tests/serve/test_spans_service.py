"""End-to-end request span trees through the serving pipeline.

The tentpole acceptance criteria: drive a :class:`SolverService` built with
a :class:`SpanCollector` through a load-generator run and require that
*every* admitted-or-rejected request produced a span tree whose root
carries the ``req-`` correlation id and whose direct children account for
>= 95% of the measured latency — on completed, degraded, and rejected
paths alike.
"""

from repro.data.synthetic import gaussian_instance
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPANS, SpanCollector
from repro.serve import (
    SolverService,
    WarmEnginePool,
    flaky_factory,
    generate_workload,
    run_load,
)


def _service(spans, **kwargs):
    metrics = MetricsRegistry()
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("pool", WarmEnginePool(None, metrics=metrics))
    return SolverService(metrics=metrics, spans=spans, **kwargs)


class TestLoadGenSpanTrees:
    def test_every_request_yields_a_complete_tree(self):
        spans = SpanCollector()
        service = _service(spans, max_batch=4)
        try:
            service.pool.warm([8, 12, 16])
            workload = generate_workload(30, seed=3, shapes=(8, 8, 12, 16))
            report = run_load(service, workload, concurrency=4, verify=False)
        finally:
            service.close()

        assert report.lost == 0
        responses = report.responses
        assert len(responses) == 30
        roots = {span.correlation_id: span for span in spans.roots()}
        for response in responses:
            correlation = response.correlation_id
            assert correlation.startswith("req-")
            root = roots[correlation]
            assert root.name == "request"
            assert root.attributes["request_id"] == response.request_id
            expected = "ok" if response.ok else "rejected"
            assert root.status == expected
            # Leaf spans must explain >= 95% of the measured latency.
            assert spans.coverage(correlation) >= 0.95
            children = {s.name for s in spans.children(root)}
            if response.ok:
                assert children == {"queue", "execute"}
                execute = next(
                    s for s in spans.children(root) if s.name == "execute"
                )
                assert execute.attributes["backend"] == response.backend
                assert execute.attributes["batched"] == response.batched
        # Every span of the run is finished — nothing leaks open.
        assert all(span.finished for span in spans.finished())

    def test_engine_requests_link_to_engine_run_spans(self):
        spans = SpanCollector()
        service = _service(spans)
        try:
            service.pool.warm([8])
            response = service.solve(
                gaussian_instance(8, 10, seed=1), tier="ipu", timeout=60.0
            )
        finally:
            service.close()
        assert response.ok and response.backend == "hunipu"
        tree = spans.tree(response.correlation_id)
        assert tree is not None

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        flattened = list(names(tree))
        # The request span tree reaches down into the engine's own story.
        assert "engine.run" in flattened
        assert "batch.solve" in flattened
        engine = next(
            node
            for node in _walk(tree)
            if node["name"] == "engine.run"
        )
        assert engine["correlation_id"] == response.correlation_id
        assert engine["attributes"]["supersteps"] > 0

    def test_degraded_paths_keep_complete_trees(self):
        spans = SpanCollector()
        metrics = MetricsRegistry()
        pool = WarmEnginePool(
            flaky_factory(1.0, seed=0), metrics=metrics
        )
        service = SolverService(
            workers=1, pool=pool, metrics=metrics, spans=spans
        )
        try:
            response = service.solve(
                gaussian_instance(8, 10, seed=2), tier="ipu", timeout=60.0
            )
        finally:
            service.close()
        assert response.ok and response.degraded
        correlation = response.correlation_id
        assert spans.coverage(correlation) >= 0.95
        names = [s.name for s in spans.by_correlation(correlation)]
        # The failed engine leg is recorded (status error), then the
        # fallback leg, and the tree still closes.
        assert "backend.hunipu" in names
        statuses = {
            s.name: s.status for s in spans.by_correlation(correlation)
        }
        assert statuses["backend.hunipu"] == "error"
        assert statuses["request"] == "ok"

    def test_admission_reject_has_root_with_reject_attr(self):
        spans = SpanCollector()
        service = _service(spans, workers=1)
        service.close()  # shut down -> every submit rejects
        ticket = service.submit(gaussian_instance(8, 10, seed=0))
        response = ticket.response(5.0)
        assert response.status == "rejected"
        assert response.reject.code == "shutdown"
        root = spans.tree(response.correlation_id)
        assert root is not None
        assert root["status"] == "rejected"
        assert root["attributes"]["reject"] == "shutdown"
        assert spans.coverage(response.correlation_id) == 1.0

    def test_invalid_request_still_traced(self):
        spans = SpanCollector()
        service = _service(spans, workers=1)
        try:
            ticket = service.submit(
                gaussian_instance(8, 10, seed=0), tier="warp"
            )
            response = ticket.response(5.0)
        finally:
            service.close()
        assert response.reject.code == "invalid"
        root = spans.tree(response.correlation_id)
        assert root["attributes"]["reject"] == "invalid"

    def test_null_spans_service_records_nothing(self):
        service = _service(NULL_SPANS, workers=1)
        try:
            response = service.solve(
                gaussian_instance(8, 10, seed=0), tier="fast", timeout=30.0
            )
        finally:
            service.close()
        assert response.ok
        assert response.correlation_id.startswith("req-")


class TestSpansDocumentRoundTrip:
    def test_export_validates_and_round_trips(self, tmp_path):
        import json

        from repro.obs.export import (
            perfetto_from_documents,
            spans_to_dict,
            validate_document,
            validate_perfetto,
            write_json,
        )

        spans = SpanCollector()
        service = _service(spans, workers=2)
        try:
            workload = generate_workload(12, seed=5, shapes=(8, 12))
            run_load(service, workload, concurrency=3, verify=False)
        finally:
            service.close()
        document = spans_to_dict(spans, meta={"seed": 5})
        validate_document(document)
        path = write_json(tmp_path / "spans.json", document)
        loaded = json.loads(path.read_text())
        validate_document(loaded)
        assert loaded == document
        perfetto = perfetto_from_documents(spans_document=loaded)
        validate_perfetto(perfetto)
        assert perfetto["traceEvents"]


def _walk(node):
    yield node
    for child in node["children"]:
        yield from _walk(child)
