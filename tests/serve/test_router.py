"""Tests for routing, latency estimation, and degradation planning."""

import numpy as np
import pytest

from repro.lap.problem import LAPInstance
from repro.serve.request import SolveRequest
from repro.serve.router import LatencyEstimator, Router


def _request(size=8, tier="auto", deadline_s=None, submitted_at=0.0):
    costs = np.random.default_rng(0).random((size, size))
    return SolveRequest(
        LAPInstance(costs),
        tier=tier,
        deadline_s=deadline_s,
        submitted_at=submitted_at,
    )


class TestLatencyEstimator:
    def test_first_observation_is_the_estimate(self):
        estimator = LatencyEstimator()
        estimator.observe("hunipu", 8, 0.1)
        assert estimator.estimate("hunipu", 8) == pytest.approx(0.1)

    def test_ewma_converges(self):
        estimator = LatencyEstimator(alpha=0.5)
        estimator.observe("hunipu", 8, 0.1)
        estimator.observe("hunipu", 8, 0.3)
        assert estimator.estimate("hunipu", 8) == pytest.approx(0.2)

    def test_unseen_shape_scales_quadratically(self):
        estimator = LatencyEstimator()
        estimator.observe("hunipu", 8, 0.1)
        assert estimator.estimate("hunipu", 16) == pytest.approx(0.4)

    def test_unseen_backend_is_unknown(self):
        estimator = LatencyEstimator()
        estimator.observe("hunipu", 8, 0.1)
        assert estimator.estimate("scipy", 8) is None

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            LatencyEstimator(alpha=0.0)

    def test_rejects_bad_max_extrapolation(self):
        with pytest.raises(ValueError):
            LatencyEstimator(max_extrapolation=0.5)

    def test_distant_shape_is_unknown_not_extrapolated(self):
        # Regression: one tiny warm shape used to be extrapolated
        # quadratically to arbitrarily distant sizes (8 → 512 is a 4096x
        # guess built on zero evidence).  Beyond the bound the estimator
        # must say "unknown".
        estimator = LatencyEstimator(max_extrapolation=4.0)
        estimator.observe("hunipu", 8, 0.1)
        assert estimator.estimate("hunipu", 512) is None
        assert estimator.estimate("hunipu", 1) is None  # too far *down* too
        # Within the bound the quadratic scaling still applies.
        assert estimator.estimate("hunipu", 32) == pytest.approx(1.6)

    def test_nearest_in_bound_shape_wins(self):
        estimator = LatencyEstimator(max_extrapolation=4.0)
        estimator.observe("hunipu", 8, 0.1)
        estimator.observe("hunipu", 64, 0.8)
        # 48 is nearer to 64; 8 → 48 would also exceed the bound anyway.
        assert estimator.estimate("hunipu", 48) == pytest.approx(
            0.8 * (48 / 64) ** 2
        )


class TestLadders:
    def test_tier_ladders(self):
        router = Router()
        warm = frozenset()
        assert router.plan(_request(tier="ipu"), warm, 0.0).ladder == (
            "hunipu",
            "scipy",
        )
        assert router.plan(_request(tier="auto"), warm, 0.0).ladder == (
            "hunipu",
            "fastha",
            "scipy",
        )
        assert router.plan(_request(tier="fast"), warm, 0.0).ladder == ("scipy",)

    def test_engine_target_rides_warm_shape(self):
        router = Router()
        plan = router.plan(_request(size=7), frozenset({8}), 0.0)
        assert plan.engine_target == 8

    def test_engine_target_respects_pad_limit(self):
        router = Router(pad_limit=1.1)
        plan = router.plan(_request(size=7), frozenset({16}), 0.0)
        assert plan.engine_target == 7

    def test_backoff_doubles(self):
        router = Router(backoff_base_s=0.01)
        assert router.backoff_s(0) == pytest.approx(0.01)
        assert router.backoff_s(1) == pytest.approx(0.02)


class TestPreemptiveDegradation:
    def test_no_estimate_keeps_full_ladder(self):
        router = Router()
        plan = router.plan(_request(deadline_s=0.001), frozenset(), 0.0)
        assert plan.backend == "hunipu"
        assert not plan.preempted

    def test_slow_engine_estimate_degrades(self):
        router = Router()
        router.estimator.observe("hunipu", 8, 1.0)  # way above the budget
        plan = router.plan(_request(deadline_s=0.01), frozenset(), 0.0)
        assert plan.preempted
        assert plan.backend != "hunipu"
        # The approximate tier is the terminal deadline rung.
        assert plan.ladder[-1] == "approx"
        assert "scipy" in plan.ladder

    def test_fast_enough_engine_is_kept(self):
        router = Router()
        router.estimator.observe("hunipu", 8, 0.001)
        plan = router.plan(_request(deadline_s=10.0), frozenset(), 0.0)
        assert plan.backend == "hunipu"
        assert not plan.preempted
        assert plan.estimate_s == pytest.approx(0.001)

    def test_ipu_tier_is_never_preempted(self):
        router = Router()
        router.estimator.observe("hunipu", 8, 1.0)
        plan = router.plan(
            _request(tier="ipu", deadline_s=0.01), frozenset(), 0.0
        )
        assert plan.backend == "hunipu"
        assert not plan.preempted

    def test_cold_distant_shape_is_not_preempted(self):
        # Regression: a single observation on a tiny shape used to produce
        # a wild quadratic guess for a much larger cold shape, preempting
        # it off the engine before the engine ever got to prove itself.
        router = Router()
        router.estimator.observe("hunipu", 8, 0.05)
        plan = router.plan(
            _request(size=256, deadline_s=0.01), frozenset(), 0.0
        )
        assert plan.backend == "hunipu"
        assert not plan.preempted
        assert plan.estimate_s is None

    def test_slow_middle_legs_are_skipped_but_backstop_kept(self):
        router = Router()
        router.estimator.observe("hunipu", 8, 1.0)
        router.estimator.observe("fastha", 8, 1.0)
        plan = router.plan(_request(deadline_s=0.01), frozenset(), 0.0)
        assert plan.preempted
        assert plan.ladder == ("scipy", "approx")

    def test_deadline_descent_lands_on_approx_when_all_exact_slow(self):
        # Every exact tier predicted over budget: the ladder collapses to
        # the auction rung (plus nothing else — scipy was trimmed too).
        router = Router()
        router.estimator.observe("hunipu", 8, 1.0)
        router.estimator.observe("fastha", 8, 1.0)
        router.estimator.observe("scipy", 8, 1.0)
        plan = router.plan(_request(deadline_s=0.01), frozenset(), 0.0)
        assert plan.preempted
        assert plan.ladder == ("approx",)

    def test_approx_tier_routes_to_auction_head(self):
        router = Router()
        plan = router.plan(_request(tier="approx"), frozenset(), 0.0)
        assert plan.backend == "approx"
        assert plan.ladder == ("approx", "scipy")
        assert not plan.preempted
