"""Tests for the warm-start session cache and its service routing."""

import numpy as np
import pytest

from repro.core.solver import HunIPUSolver
from repro.lap.problem import LAPInstance
from repro.obs.metrics import MetricsRegistry
from repro.serve.loadgen import generate_workload, run_load
from repro.serve.sessions import SessionStore
from repro.serve.service import SolverService


def _warm_for(size, seed=0):
    rng = np.random.default_rng(seed)
    result = HunIPUSolver().solve(
        LAPInstance(rng.random((size, size))), capture_warm_start=True
    )
    return result.stats["warm_start"]


class TestSessionStore:
    def test_miss_then_hit(self):
        store = SessionStore()
        assert store.get("a", 8) is None
        warm = _warm_for(8)
        store.record("a", warm, supersteps=100, warm_used=False)
        assert store.get("a", 8) is warm
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_size_mismatch_is_a_miss(self):
        store = SessionStore()
        store.record("a", _warm_for(8), supersteps=100, warm_used=False)
        assert store.get("a", 12) is None
        assert store.stats()["misses"] == 1

    def test_lru_eviction(self):
        store = SessionStore(capacity=2)
        store.record("a", _warm_for(8, 1), supersteps=10, warm_used=False)
        store.record("b", _warm_for(8, 2), supersteps=10, warm_used=False)
        store.get("a", 8)  # refresh a; b becomes LRU
        store.record("c", _warm_for(8, 3), supersteps=10, warm_used=False)
        assert len(store) == 2
        assert store.get("b", 8) is None
        assert store.get("a", 8) is not None
        assert store.stats()["evictions"] == 1

    def test_supersteps_saved_accumulates_vs_cold_baseline(self):
        store = SessionStore()
        warm = _warm_for(8)
        store.record("a", warm, supersteps=500, warm_used=False)  # cold baseline
        store.record("a", warm, supersteps=120, warm_used=True)
        store.record("a", warm, supersteps=80, warm_used=True)
        stats = store.stats()
        assert stats["warm_solves"] == 2
        assert stats["supersteps_saved"] == (500 - 120) + (500 - 80)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SessionStore(capacity=0)

    def test_metrics_flow(self):
        metrics = MetricsRegistry()
        store = SessionStore(metrics=metrics)
        store.get("a", 8)
        store.record("a", _warm_for(8), supersteps=100, warm_used=False)
        store.get("a", 8)
        assert metrics.counter("serve.sessions.misses").value == 1
        assert metrics.counter("serve.sessions.hits").value == 1


class TestServiceSessions:
    def test_session_followups_go_warm(self):
        rng = np.random.default_rng(0)
        sessions = SessionStore()
        costs = rng.random((8, 8))
        with SolverService(workers=1, sessions=sessions) as service:
            for _ in range(4):
                costs[rng.choice(8, size=2, replace=False)] = rng.random((2, 8))
                ticket = service.submit(
                    LAPInstance(costs.copy()), tier="ipu", session_id="s1"
                )
                response = ticket.response(60.0)
                assert response.ok
                assert response.backend == "hunipu"
        stats = sessions.stats()
        assert stats["sessions"] == 1
        assert stats["misses"] == 1  # only the first visit
        assert stats["hits"] == 3
        assert stats["warm_solves"] == 3

    def test_sessions_block_in_stats_document(self):
        sessions = SessionStore()
        with SolverService(workers=1, sessions=sessions) as service:
            rng = np.random.default_rng(1)
            service.submit(
                LAPInstance(rng.random((8, 8))), tier="ipu", session_id="x"
            ).response(60.0)
            document = service.stats_document()
        assert "sessions" in document
        assert document["sessions"]["sessions"] == 1

    def test_no_store_ignores_session_id(self):
        with SolverService(workers=1) as service:
            rng = np.random.default_rng(2)
            response = service.submit(
                LAPInstance(rng.random((8, 8))), tier="ipu", session_id="x"
            ).response(60.0)
            assert response.ok
            assert "sessions" not in service.stats_document()

    def test_session_results_verify_against_scipy(self):
        sessions = SessionStore()
        workload = generate_workload(
            20, seed=7, shapes=(8, 12), session_streams=2
        )
        assert any(item.session_id for item in workload)
        with SolverService(workers=2, sessions=sessions) as service:
            report = run_load(
                service, workload, mode="closed", concurrency=2, verify=True
            )
        assert report.lost == 0
        assert report.verify_failures == 0
        assert report.completed == len(workload)
        assert sessions.stats()["warm_solves"] > 0


class TestLoadgenSessions:
    def test_session_items_interleave(self):
        workload = generate_workload(10, seed=0, session_streams=2)
        session_items = [item for item in workload if item.session_id]
        assert len(session_items) == 5  # every other item
        assert {item.session_id for item in session_items} == {
            "sess-0",
            "sess-1",
        }
        # Session traffic pins the engine tier and carries no deadline.
        assert all(item.tier == "ipu" for item in session_items)
        assert all(item.deadline_s is None for item in session_items)

    def test_streams_keep_a_stable_shape(self):
        workload = generate_workload(12, seed=3, session_streams=1)
        sizes = {
            item.instance.size for item in workload if item.session_id
        }
        assert len(sizes) == 1

    def test_no_streams_means_no_session_ids(self):
        workload = generate_workload(6, seed=0)
        assert all(item.session_id is None for item in workload)
