"""HTTP conformance battery: the server never crashes, rejects are typed.

Runs the stdlib front-end over a :class:`ServiceAdapter` (in-process
service — no spawn cost), then throws the malformed-input catalogue at
``/solve``: broken JSON, non-square and NaN matrices, a missing
``deadline_s`` key, oversized matrices and bodies, wrong paths, wrong
methods.  Every one must come back as a typed 4xx/5xx JSON document in the
``repro.solve-response/1`` schema with a correlation id — and the server
must keep answering afterwards (the final health check is the point).
"""

import json
import re

import numpy as np
import pytest

from repro.obs.export import (
    validate_serve_stats,
    validate_solve_response,
)
from repro.serve import (
    STATUS_OF_REJECT,
    HttpClient,
    HttpFrontend,
    ServiceAdapter,
    SolverService,
)

_RNG = np.random.default_rng(11)


@pytest.fixture(scope="module")
def frontend():
    service = SolverService(workers=2, verify=True)
    front = HttpFrontend(ServiceAdapter(service))
    yield front
    front.close()
    service.close()


@pytest.fixture(scope="module")
def client(frontend):
    return HttpClient(frontend.url)


def _assert_typed_reject(status, document, code):
    assert status == STATUS_OF_REJECT[code], (status, document)
    validate_solve_response(document)
    assert document["status"] == "rejected"
    assert document["reject"]["code"] == code
    assert document["correlation_id"]  # never empty, never missing


def test_happy_path_solves_and_validates(client):
    status, document = client.solve(
        _RNG.random((6, 6)) * 10.0, tier="auto", deadline_s=None
    )
    assert status == 200
    validate_solve_response(document)
    assert document["status"] == "completed"
    assert sorted(document["assignment"]) == list(range(6))
    assert document["total_cost"] == pytest.approx(
        float(
            np.asarray(document["total_cost"])
        )  # self-consistent JSON number
    )


def test_approx_tier_reports_gap_bound(client):
    status, document = client.solve(
        _RNG.random((8, 8)) * 10.0, tier="approx", deadline_s=None
    )
    assert status == 200
    validate_solve_response(document)
    assert document["status"] == "completed"
    assert document["backend"] == "approx"
    assert document["gap_bound"] is not None
    assert document["gap_bound"] >= 0.0


def test_malformed_json_is_typed_400(client):
    status, document = client.solve_raw(b"{not json at all")
    _assert_typed_reject(status, document, "bad_json")


def test_non_object_body_is_typed_400(client):
    status, document = client.solve_raw(b"[1, 2, 3]")
    _assert_typed_reject(status, document, "bad_json")


def test_missing_deadline_key_is_typed_400(client):
    body = json.dumps({"costs": [[1.0, 2.0], [3.0, 4.0]]}).encode()
    status, document = client.solve_raw(body)
    _assert_typed_reject(status, document, "missing_deadline")


def test_non_square_matrix_is_typed_400(client):
    body = json.dumps(
        {"costs": [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]], "deadline_s": None}
    ).encode()
    status, document = client.solve_raw(body)
    _assert_typed_reject(status, document, "invalid")


def test_nan_cost_is_typed_400(client):
    body = (
        b'{"costs": [[1.0, NaN], [2.0, 3.0]], "deadline_s": null}'
    )
    status, document = client.solve_raw(body)
    # Python's json parses NaN; schema validation must still refuse it.
    _assert_typed_reject(status, document, "invalid")


def test_oversized_matrix_is_typed_400(client):
    n = 513  # one past _MAX_MATRIX_N; rejected before full validation
    row = [0.0] * n
    body = json.dumps({"costs": [row] * n, "deadline_s": None}).encode()
    status, document = client.solve_raw(body)
    _assert_typed_reject(status, document, "oversized")


def test_oversized_body_is_typed_413(frontend):
    small = HttpClient(frontend.url)
    huge = b" " * (frontend.max_body_bytes + 1)
    status, document = small.solve_raw(huge)
    _assert_typed_reject(status, document, "body_too_large")


def test_unknown_path_is_typed_404(client):
    status, payload = client._request("/nope")
    document = json.loads(payload)
    _assert_typed_reject(status, document, "not_found")


def test_wrong_method_is_typed_405(client):
    status, payload = client._request("/solve", method="DELETE")
    document = json.loads(payload)
    _assert_typed_reject(status, document, "bad_method")


def test_negative_deadline_is_typed_400(client):
    body = json.dumps(
        {"costs": [[1.0, 2.0], [3.0, 4.0]], "deadline_s": -1.0}
    ).encode()
    status, document = client.solve_raw(body)
    _assert_typed_reject(status, document, "invalid")


def test_unknown_tier_is_typed_400(client):
    body = json.dumps(
        {
            "costs": [[1.0, 2.0], [3.0, 4.0]],
            "deadline_s": None,
            "tier": "warp-speed",
        }
    ).encode()
    status, document = client.solve_raw(body)
    _assert_typed_reject(status, document, "invalid")


def test_metrics_parses_as_prometheus(client):
    status, text = client.metrics()
    assert status == 200
    lines = [line for line in text.splitlines() if line.strip()]
    assert lines, "metrics exposition must not be empty"
    sample = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?\s[-+0-9.eE]+(\s\d+)?$'
    )
    for line in lines:
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
        else:
            assert sample.match(line), f"unparseable sample line: {line!r}"


def test_stats_document_validates_over_http(client):
    status, document = client.stats()
    assert status == 200
    validate_serve_stats(document)
    assert document["meta"]["transport"] == "http"


def test_healthz_reports_ok(client):
    status, document = client.healthz()
    assert status == 200
    assert document["ok"] is True


def test_server_survives_the_whole_battery(client):
    """After every malformed request above, the server still solves."""
    status, document = client.solve(
        np.arange(9.0).reshape(3, 3), tier="fast", deadline_s=None
    )
    assert status == 200
    assert document["status"] == "completed"
