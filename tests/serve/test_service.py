"""Tests for SolverService: admission, deadlines, fallback, accounting."""

import threading
import time

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.core.solver import HunIPUSolver
from repro.lap.problem import LAPInstance
from repro.obs.export import validate_document
from repro.obs.metrics import MetricsRegistry
from repro.serve import SolverService, WarmEnginePool, flaky_factory
from repro.serve.service import SolverService as ServiceClass


def _instance(size=6, seed=0, name="t"):
    costs = np.random.default_rng(seed).random((size, size)) * 10
    return LAPInstance(costs, name=name)


def _optimum(instance):
    rows, cols = linear_sum_assignment(instance.costs)
    return float(instance.costs[rows, cols].sum())


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def _gated_factory(gate: threading.Event):
    """Engines whose runs block until ``gate`` is set (deterministic tests)."""

    class GatedSolver(HunIPUSolver):
        def _run_engine(self, compiled, instance, **kwargs):
            gate.wait(timeout=30.0)
            return super()._run_engine(compiled, instance, **kwargs)

    return GatedSolver


def _gated_service(gate, **kwargs):
    metrics = MetricsRegistry()
    pool = WarmEnginePool(_gated_factory(gate), metrics=metrics)
    defaults = {"workers": 1, "max_batch": 1, "metrics": metrics, "pool": pool}
    defaults.update(kwargs)
    return SolverService(**defaults)


class TestSolving:
    def test_each_tier_returns_the_optimum(self):
        instance = _instance(seed=1)
        with SolverService(workers=2) as service:
            for tier in ("ipu", "auto", "fast"):
                response = service.solve(instance, tier=tier, timeout=60.0)
                assert response.ok
                assert response.result.total_cost == pytest.approx(
                    _optimum(instance), abs=1e-6
                )

    def test_fast_tier_skips_the_engine(self):
        with SolverService(workers=1) as service:
            response = service.solve(_instance(), tier="fast", timeout=60.0)
        assert response.backend == "scipy"
        assert not response.degraded

    def test_invalid_tier_is_typed_rejected(self):
        with SolverService(workers=1) as service:
            ticket = service.submit(_instance(), tier="bogus")
            response = ticket.response(5.0)
        assert not response.ok
        assert response.reject.code == "invalid"

    def test_micro_batch_coalesces_same_shape(self):
        gate = threading.Event()
        service = _gated_service(gate, max_batch=8, queue_capacity=32)
        try:
            instance = _instance(seed=2)
            blocker = service.submit(instance, tier="ipu")
            assert _wait_until(lambda: service.queue_depth() == 0)
            tickets = [
                service.submit(_instance(seed=10 + i), tier="ipu")
                for i in range(4)
            ]
            gate.set()
            responses = [blocker.response(60.0)] + [
                t.response(60.0) for t in tickets
            ]
        finally:
            gate.set()
            service.close()
        assert all(r.ok for r in responses)
        assert max(r.batched for r in responses) >= 2
        stats = service.stats()
        assert stats["coalesced"] >= 1


class TestAdmissionControl:
    def test_queue_full_is_typed_rejected(self):
        gate = threading.Event()
        service = _gated_service(gate, queue_capacity=2)
        try:
            blocker = service.submit(_instance(seed=3), tier="ipu")
            assert _wait_until(lambda: service.queue_depth() == 0)
            queued = [service.submit(_instance(seed=4 + i)) for i in range(2)]
            overflow = service.submit(_instance(seed=9))
            rejection = overflow.response(1.0)
            assert not rejection.ok
            assert rejection.reject.code == "queue_full"
            assert "capacity" in rejection.reject.detail
            gate.set()
            assert blocker.response(60.0).ok
            assert all(t.response(60.0).ok for t in queued)
        finally:
            gate.set()
            service.close()
        document = service.stats_document()
        validate_document(document)
        assert document["requests"]["rejected"]["queue_full"] == 1
        assert document["requests"]["in_flight"] == 0

    def test_cancel_while_queued(self):
        gate = threading.Event()
        service = _gated_service(gate, queue_capacity=8)
        try:
            blocker = service.submit(_instance(seed=5), tier="ipu")
            assert _wait_until(lambda: service.queue_depth() == 0)
            victim = service.submit(_instance(seed=6))
            assert victim.cancel()
            gate.set()
            assert blocker.response(60.0).ok
            response = victim.response(60.0)
        finally:
            gate.set()
            service.close()
        assert not response.ok
        assert response.reject.code == "cancelled"

    def test_deadline_expires_while_queued(self):
        gate = threading.Event()
        service = _gated_service(gate, queue_capacity=8)
        try:
            blocker = service.submit(_instance(seed=7), tier="ipu")
            assert _wait_until(lambda: service.queue_depth() == 0)
            victim = service.submit(_instance(seed=8), deadline_s=0.01)
            time.sleep(0.05)
            gate.set()
            assert blocker.response(60.0).ok
            response = victim.response(60.0)
        finally:
            gate.set()
            service.close()
        assert not response.ok
        assert response.reject.code == "deadline_expired"

    def test_submit_after_close_is_shutdown_rejected(self):
        service = SolverService(workers=1)
        service.close()
        response = service.submit(_instance()).response(1.0)
        assert not response.ok
        assert response.reject.code == "shutdown"
        validate_document(service.stats_document())

    def test_close_without_drain_rejects_queued(self):
        gate = threading.Event()
        service = _gated_service(gate, queue_capacity=8)
        blocker = service.submit(_instance(seed=9), tier="ipu")
        assert _wait_until(lambda: service.queue_depth() == 0)
        queued = [service.submit(_instance(seed=20 + i)) for i in range(2)]
        closer = threading.Thread(
            target=service.close, kwargs={"drain": False}, daemon=True
        )
        closer.start()
        time.sleep(0.05)
        gate.set()
        closer.join(30.0)
        assert blocker.response(60.0).ok  # in-flight work still finishes
        codes = {t.response(60.0).reject.code for t in queued}
        assert codes == {"shutdown"}
        validate_document(service.stats_document())


class TestDegradation:
    def test_permanent_engine_fault_falls_back(self):
        metrics = MetricsRegistry()
        pool = WarmEnginePool(
            flaky_factory(failures_before_success=10**9), metrics=metrics
        )
        instance = _instance(seed=10)
        with SolverService(workers=1, pool=pool, metrics=metrics) as service:
            response = service.solve(instance, tier="auto", timeout=60.0)
        assert response.ok
        assert response.degraded
        assert response.fallback_reason == "engine_error"
        assert response.backend in ("fastha", "scipy")
        assert response.result.total_cost == pytest.approx(
            _optimum(instance), abs=1e-6
        )
        document = service.stats_document()
        validate_document(document)
        assert document["fallbacks"]["engine_error"] == 1
        assert document["requests"]["degraded"] == 1

    def test_single_fault_recovers_on_retry(self):
        metrics = MetricsRegistry()
        pool = WarmEnginePool(
            flaky_factory(failures_before_success=1), metrics=metrics
        )
        instance = _instance(seed=11)
        with SolverService(workers=1, pool=pool, metrics=metrics) as service:
            response = service.solve(instance, tier="ipu", timeout=60.0)
        assert response.ok
        assert response.backend == "hunipu"
        assert not response.degraded  # retried, but served by the right backend
        document = service.stats_document()
        validate_document(document)
        assert document["fallbacks"]["retries"] >= 1

    def test_degraded_results_are_still_optimal(self):
        pool = WarmEnginePool(flaky_factory(failures_before_success=10**9))
        instances = [_instance(seed=30 + i, name=f"deg-{i}") for i in range(5)]
        with SolverService(workers=2, pool=pool) as service:
            tickets = [service.submit(inst) for inst in instances]
            responses = [t.response(60.0) for t in tickets]
        for instance, response in zip(instances, responses):
            assert response.ok and response.degraded
            assert response.result.total_cost == pytest.approx(
                _optimum(instance), abs=1e-6
            )

    def test_verification_failure_is_never_silent(self, monkeypatch):
        monkeypatch.setattr(
            ServiceClass,
            "_verified",
            staticmethod(lambda instance, result, **kwargs: False),
        )
        with SolverService(workers=1, verify=True) as service:
            response = service.solve(_instance(), timeout=60.0)
        assert not response.ok
        assert response.reject.code == "internal_error"
        assert "verification" in response.reject.detail
        validate_document(service.stats_document())


class TestStats:
    def test_document_accounts_for_everything(self):
        with SolverService(workers=2, verify=True) as service:
            tickets = [
                service.submit(_instance(seed=40 + i), tier=tier)
                for i, tier in enumerate(("ipu", "auto", "fast", "auto"))
            ]
            responses = [t.response(60.0) for t in tickets]
        assert all(r.ok for r in responses)
        document = service.stats_document(meta={"suite": "unit"})
        validate_document(document)
        requests = document["requests"]
        assert requests["submitted"] == 4
        assert requests["completed"] == 4
        assert requests["in_flight"] == 0
        assert sum(document["backends"].values()) == 4
        assert document["meta"]["suite"] == "unit"
        assert document["latency_seconds"]["count"] == 4
        assert document["pool"]["hits"] + document["pool"]["misses"] > 0

    def test_constructor_validates_limits(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            SolverService(workers=0)
        with pytest.raises(SolverError):
            SolverService(workers=1, queue_capacity=0)
        with pytest.raises(SolverError):
            SolverService(workers=1, max_batch=0)
