"""Property tests for the serve-layer percentile/latency summaries.

Satellite of the observability PR: ``percentile`` historically required
pre-sorted input and silently returned wrong answers otherwise; these tests
pin the defensive-sort behaviour and the linear-interpolation semantics
against ``numpy.percentile`` (the ``linear`` method) over arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.stats import latency_summary, percentile

# Finite, order-comparable floats; latencies are non-negative but the
# function itself is general.
_values = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=64,
)
_quantiles = st.floats(min_value=0.0, max_value=100.0)


def _numpy_linear(values, q):
    # numpy renamed interpolation= to method= in 1.22; support either.
    try:
        return float(np.percentile(values, q, method="linear"))
    except TypeError:  # pragma: no cover - old numpy
        return float(np.percentile(values, q, interpolation="linear"))


class TestPercentileProperties:
    @settings(max_examples=200, deadline=None)
    @given(values=_values, q=_quantiles)
    def test_matches_numpy_on_any_order(self, values, q):
        expected = _numpy_linear(values, q)
        assert percentile(values, q) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )

    @settings(max_examples=100, deadline=None)
    @given(values=_values, q=_quantiles)
    def test_order_invariant(self, values, q):
        forward = percentile(values, q)
        assert percentile(list(reversed(values)), q) == forward
        assert percentile(sorted(values), q) == forward

    @settings(max_examples=100, deadline=None)
    @given(values=_values, q=_quantiles)
    def test_bounded_by_extremes(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @settings(max_examples=50, deadline=None)
    @given(values=_values)
    def test_endpoints(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)


class TestPercentileEdges:
    def test_interpolation_between_equal_values_is_exact(self):
        # Regression: lo*(1-w) + hi*w rounded to -1.3750000000000002 here
        # (just below the sample minimum); the lo + w*(hi-lo) form is
        # exact when both neighbours are equal.
        values = [0.0] * 11 + [-1.375, -1.375]
        assert percentile(values, 1.5) == -1.375

    def test_unsorted_regression(self):
        # The historical bug: unsorted input returned the positional value.
        assert percentile([10.0, 0.0], 100) == 10.0
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_empty_returns_zero(self):
        assert percentile([], 99) == 0.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], -1)

    def test_interpolates_between_points(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = latency_summary([0.3, 0.1, 0.2])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == 0.3

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=32,
        )
    )
    def test_summary_matches_numpy(self, values):
        summary = latency_summary(values)
        for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            assert summary[key] == pytest.approx(
                _numpy_linear(values, q), rel=1e-9, abs=1e-9
            )


class TestLerpAnchoring:
    def test_near_100_with_large_magnitude_matches_numpy(self):
        """Regression: q→100 over [-(2^24+1), 0] — the far-anchored lerp
        lost half the relative precision; numpy anchors at the nearer
        endpoint and so do we."""
        values = [0.0, -16777217.0]
        q = 99.99999999999999
        assert percentile(values, q) == _numpy_linear(values, q)
