"""Tests for the serving request/response/ticket types."""

import threading

import numpy as np
import pytest

from repro.errors import InvalidProblemError
from repro.lap.problem import LAPInstance
from repro.serve.request import (
    REJECT_CODES,
    RejectReason,
    SolveRequest,
    SolveResponse,
    Ticket,
)
from repro.serve.stats import latency_summary, percentile


def _instance(size=4, seed=0):
    return LAPInstance(np.random.default_rng(seed).random((size, size)))


class TestRejectReason:
    def test_accepts_known_codes(self):
        for code in REJECT_CODES:
            assert RejectReason(code).code == code

    def test_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="unknown reject code"):
            RejectReason("whatever")


class TestSolveRequest:
    def test_rejects_unknown_tier(self):
        with pytest.raises(InvalidProblemError, match="tier"):
            SolveRequest(_instance(), tier="best-effort")

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(InvalidProblemError, match="deadline"):
            SolveRequest(_instance(), deadline_s=0.0)

    def test_deadline_accounting(self):
        request = SolveRequest(_instance(), deadline_s=2.0, submitted_at=100.0)
        assert request.deadline_at == 102.0
        assert request.remaining(101.0) == pytest.approx(1.0)
        assert not request.expired(101.9)
        assert request.expired(102.0)

    def test_no_deadline_never_expires(self):
        request = SolveRequest(_instance(), submitted_at=0.0)
        assert request.deadline_at is None
        assert request.remaining(1e9) is None
        assert not request.expired(1e9)


class TestSolveResponse:
    def test_completed_requires_result(self):
        with pytest.raises(ValueError, match="result"):
            SolveResponse(request_id=1, status="completed")

    def test_rejected_requires_reason(self):
        with pytest.raises(ValueError, match="typed reason"):
            SolveResponse(request_id=1, status="rejected")

    def test_rejected_is_not_ok(self):
        response = SolveResponse(
            request_id=1, status="rejected", reject=RejectReason("queue_full")
        )
        assert not response.ok


class TestTicket:
    def _rejected(self, request_id=0):
        return SolveResponse(
            request_id=request_id,
            status="rejected",
            reject=RejectReason("cancelled"),
        )

    def test_resolve_is_idempotent(self):
        ticket = Ticket(SolveRequest(_instance(), request_id=7))
        assert ticket._resolve(self._rejected(7))
        assert not ticket._resolve(self._rejected(7))
        assert ticket.response(0.1).reject.code == "cancelled"

    def test_cancel_only_before_resolution(self):
        ticket = Ticket(SolveRequest(_instance()))
        assert ticket.cancel()
        assert ticket.cancelled
        ticket._resolve(self._rejected())
        assert not ticket.cancel()

    def test_response_timeout(self):
        ticket = Ticket(SolveRequest(_instance()))
        with pytest.raises(TimeoutError):
            ticket.response(0.01)

    def test_response_unblocks_on_resolve(self):
        ticket = Ticket(SolveRequest(_instance(), request_id=3))
        timer = threading.Timer(0.02, ticket._resolve, args=(self._rejected(3),))
        timer.start()
        assert ticket.response(5.0).request_id == 3


class TestPercentiles:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    def test_empty_summary_is_zeroed(self):
        summary = latency_summary([])
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_summary_fields(self):
        summary = latency_summary([0.3, 0.1, 0.2])
        assert summary["count"] == 3
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)
        assert summary["mean"] == pytest.approx(0.2)
