"""Tests for the warm engine pool (reuse, LRU eviction, thread safety)."""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.serve.pool import WarmEnginePool


class TestReuse:
    def test_released_engine_is_reused(self):
        pool = WarmEnginePool()
        first = pool.acquire(8)
        assert not first.hit
        solver = first.solver
        first.release()
        second = pool.acquire(8)
        assert second.hit
        assert second.solver is solver
        second.release()
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lease_is_exclusive(self):
        pool = WarmEnginePool()
        first = pool.acquire(8)
        second = pool.acquire(8)  # concurrent miss compiles its own
        assert second.solver is not first.solver
        first.release()
        second.release()
        assert pool.stats()["shapes"] == {"8": 2}

    def test_warm_precompiles(self):
        pool = WarmEnginePool()
        pool.warm([8, 12])
        assert pool.warm_sizes() == frozenset({8, 12})
        lease = pool.acquire(12)
        assert lease.hit
        lease.release()

    def test_context_manager_releases(self):
        pool = WarmEnginePool()
        with pool.acquire(8) as lease:
            assert lease.size == 8
            assert pool.stats()["leased"] == 1
        assert pool.stats()["leased"] == 0


class TestEviction:
    def test_zero_budget_retains_nothing(self):
        pool = WarmEnginePool(memory_budget_bytes=0)
        pool.acquire(8).release()
        assert pool.warm_sizes() == frozenset()
        assert pool.stats()["evictions"] == 1
        # Next acquire is a fresh compile.
        lease = pool.acquire(8)
        assert not lease.hit
        lease.release()

    def test_lru_evicts_oldest_idle_first(self):
        pool = WarmEnginePool()
        pool.acquire(8).release()
        nbytes = pool.stats()["resident_bytes"]
        assert nbytes > 0
        # Budget fits roughly one n=8 engine: warming a second and a third
        # shape must evict the least recently used entries.
        pool.memory_budget_bytes = int(nbytes * 1.5)
        pool.acquire(12).release()  # n=12 > n=8 footprint -> something evicts
        assert pool.stats()["evictions"] >= 1
        assert pool.stats()["resident_bytes"] <= pool.memory_budget_bytes

    def test_leased_engines_never_evicted(self):
        pool = WarmEnginePool(memory_budget_bytes=0)
        lease = pool.acquire(8)
        other = pool.acquire(12)
        other.release()  # evicted immediately (budget 0)
        assert pool.stats()["leased"] == 1
        lease.release()

    def test_metrics_flow(self):
        metrics = MetricsRegistry()
        pool = WarmEnginePool(memory_budget_bytes=0, metrics=metrics)
        pool.acquire(8).release()
        pool.acquire(8).release()
        assert metrics.counter("serve.pool.misses").value == 2
        assert metrics.counter("serve.pool.evictions").value == 2
        assert metrics.gauge("serve.pool.resident_bytes").value == 0


class TestClearGeneration:
    def test_release_after_clear_does_not_resurrect(self):
        # Regression: an engine on lease across clear() used to re-enter
        # the idle pool on release, resurrecting a purged engine.
        pool = WarmEnginePool()
        lease = pool.acquire(8)
        pool.clear()
        lease.release()
        assert pool.warm_sizes() == frozenset()
        stats = pool.stats()
        assert stats["leased"] == 0
        assert stats["resident_bytes"] == 0
        assert stats["evictions"] == 1  # the stale lease counts as evicted

    def test_release_in_new_generation_is_kept(self):
        pool = WarmEnginePool()
        pool.acquire(8).release()
        pool.clear()
        # A lease taken *after* the clear belongs to the new generation
        # and must pool normally.
        pool.acquire(8).release()
        assert pool.warm_sizes() == frozenset({8})

    def test_gauge_tracks_every_mutation(self):
        # Regression: serve.pool.resident_bytes only moved on eviction, so
        # hits and clears left it stale.
        metrics = MetricsRegistry()
        pool = WarmEnginePool(metrics=metrics)
        gauge = metrics.gauge("serve.pool.resident_bytes")
        pool.acquire(8).release()
        resident = pool.stats()["resident_bytes"]
        assert resident > 0
        assert gauge.value == resident
        lease = pool.acquire(8)  # hit empties the idle pool
        assert gauge.value == 0
        lease.release()
        assert gauge.value == resident
        pool.clear()
        assert gauge.value == 0


class TestThreadSafety:
    def test_concurrent_acquire_release_accounting(self):
        pool = WarmEnginePool()
        rounds = 20
        threads = 6
        errors = []

        def worker(size):
            try:
                for _ in range(rounds):
                    with pool.acquire(size) as lease:
                        assert lease.size == size
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        pool.warm([8])
        workers = [
            threading.Thread(target=worker, args=(8 if i % 2 else 12,))
            for i in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert not errors
        stats = pool.stats()
        assert stats["leased"] == 0
        assert stats["hits"] + stats["misses"] == rounds * threads + 1
        # Everything compiled was either retained idle or evicted.
        retained = sum(int(count) for count in stats["shapes"].values())
        assert retained + stats["evictions"] == stats["misses"]
