"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import ExperimentResult, format_grid, format_records
from repro.bench.recording import BenchScale, RunRecord, environment_summary


class TestFormatGrid:
    def test_basic_layout(self):
        table = format_grid(
            "title",
            ["a", "b"],
            [1, 2],
            {("a", 1): 1.5, ("a", 2): 2.5, ("b", 1): 3.5},
        )
        assert "title" in table
        lines = table.splitlines()
        assert lines[1].split() == ["1", "2"]
        assert "1.50" in table
        assert "-" in lines[-1]  # missing (b, 2) renders as '-'

    def test_custom_formatter(self):
        table = format_grid("t", ["x"], ["c"], {("x", "c"): 3.14159},
                            fmt=lambda v: f"{v:.4f}")
        assert "3.1416" in table


class TestRecords:
    def test_device_ms(self):
        record = RunRecord("e", "s", {}, 0.5, 1.0)
        assert record.device_ms == 500.0
        assert RunRecord("e", "s", {}, None, 1.0).device_ms is None

    def test_format_records_listing(self):
        records = [RunRecord("exp", "solver", {"n": 4}, 0.001, 0.1)]
        listing = format_records(records)
        assert "exp" in listing
        assert "n=4" in listing


class TestScales:
    def test_three_scales_exist(self):
        for name in ("quick", "default", "paper"):
            scale = BenchScale.named(name)
            assert scale.name == name

    def test_paper_scale_matches_paper_grid(self):
        paper = BenchScale.named("paper")
        assert paper.table2_sizes == (512, 1024, 2048, 4096, 8192)
        assert paper.table2_k == (1, 10, 100, 500, 1000, 5000, 10000)
        assert paper.dataset_scale == 1.0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown bench scale"):
            BenchScale.named("enormous")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert BenchScale.from_env().name == "quick"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert BenchScale.from_env().name == "default"

    def test_environment_summary_keys(self):
        summary = environment_summary()
        assert {"python", "machine", "system", "scale"} <= set(summary)


class TestExperimentResult:
    def test_format_includes_tables_and_notes(self):
        result = ExperimentResult(
            "exp", "quick", (), ("table body",), ("note one",)
        )
        text = result.format()
        assert "exp" in text
        assert "table body" in text
        assert "note one" in text

    def test_records_for_filters_by_solver(self):
        records = (
            RunRecord("e", "a", {}, None, 0.0),
            RunRecord("e", "b", {}, None, 0.0),
        )
        result = ExperimentResult("e", "quick", records, ())
        assert len(result.records_for("a")) == 1
