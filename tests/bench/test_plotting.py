"""Tests for the terminal figure renderer."""

import pytest

from repro.bench.plotting import ascii_bars, ascii_panel


class TestAsciiPanel:
    def test_renders_all_series_markers(self):
        chart = ascii_panel(
            "t", ["a", "b"], {"one": [1.0, 2.0], "two": [3.0, 4.0]}
        )
        assert "o one" in chart
        assert "x two" in chart
        assert "t" == chart.splitlines()[0]

    def test_max_value_on_top_row(self):
        chart = ascii_panel("t", ["a"], {"s": [5.0]})
        top_row = chart.splitlines()[1]
        assert "5.0" in top_row
        assert "o" in top_row

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError, match="one value per x label"):
            ascii_panel("t", ["a", "b"], {"s": [1.0]})

    def test_requires_series(self):
        with pytest.raises(ValueError):
            ascii_panel("t", ["a"], {})

    def test_x_labels_in_footer(self):
        chart = ascii_panel("t", ["10n", "500n"], {"s": [1.0, 2.0]})
        assert "10n" in chart
        assert "500n" in chart


class TestAsciiBars:
    def test_longest_bar_is_max(self):
        chart = ascii_bars("t", ["a", "b"], [1.0, 4.0])
        lines = chart.splitlines()
        assert lines[2].count("#") > lines[1].count("#")

    def test_values_annotated_with_unit(self):
        chart = ascii_bars("t", ["a"], [2.5], unit="x")
        assert "2.50x" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars("t", ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars("t", [], [])
