"""Sanity tests over the transcribed paper numbers, and cross-checks that
the paper's own claims are consistent with its tables (useful guards
against transcription typos)."""

from repro.bench.paper_reference import (
    PAPER_FIGURE5_SPEEDUP_RANGE,
    PAPER_TABLE2_GAIN,
    PAPER_TABLE3_MS,
    PAPER_TABLE3_SPEEDUP_RANGE,
    table2_gain,
    table3_speedups,
)
from repro.data.synthetic import PAPER_K_VALUES, PAPER_SIZES


class TestTable2Transcription:
    def test_full_grid_present(self):
        assert set(PAPER_TABLE2_GAIN) == {
            (n, k) for n in PAPER_SIZES for k in PAPER_K_VALUES
        }

    def test_gain_grows_with_n_at_every_k_above_1(self):
        """The paper's headline trend (k=1 is noisy at n=4096)."""
        for k in PAPER_K_VALUES:
            if k == 1:
                continue
            gains = [table2_gain(n, k) for n in PAPER_SIZES]
            assert gains == sorted(gains) or gains[-1] > gains[0] * 10

    def test_k1_column_always_smallest_beyond_512(self):
        for n in PAPER_SIZES[1:]:
            others = min(table2_gain(n, k) for k in PAPER_K_VALUES if k != 1)
            assert table2_gain(n, 1) < others

    def test_largest_corner_is_thousands(self):
        assert table2_gain(8192, 10000) > 3000


class TestTable3Transcription:
    def test_three_datasets(self):
        assert set(PAPER_TABLE3_MS) == {"HighSchool", "Voles", "MultiMagna"}

    def test_hunipu_wins_every_cell(self):
        for cells in PAPER_TABLE3_MS.values():
            for hunipu, fastha in cells.values():
                assert hunipu < fastha

    def test_speedups_match_the_claimed_band(self):
        """§V-C claims 5x-32x; the cells must realize it (within rounding)."""
        ratios = [
            ratio
            for cells in table3_speedups().values()
            for ratio in cells.values()
        ]
        low, high = PAPER_TABLE3_SPEEDUP_RANGE
        assert min(ratios) >= low
        assert max(ratios) <= high + 1.0  # Voles 80% is 31.6x; 90% is 32.6x

    def test_voles_is_fastha_worst_case(self):
        voles = max(f for _, f in PAPER_TABLE3_MS["Voles"].values())
        others = max(
            f
            for dataset in ("HighSchool", "MultiMagna")
            for _, f in PAPER_TABLE3_MS[dataset].values()
        )
        assert voles > others


class TestFigure5Claims:
    def test_range_brackets_average(self):
        low, high = PAPER_FIGURE5_SPEEDUP_RANGE
        assert low < 6.0 < high
