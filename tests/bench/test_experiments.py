"""Smoke + shape tests: every experiment harness runs at quick scale."""

import pytest

from repro.bench.ablations import mapping_exchange_bytes, run_ablations
from repro.bench.batch import run_batch_bench
from repro.bench.figure5 import run_figure5
from repro.bench.recording import BenchScale
from repro.bench.table1 import run_table1
from repro.bench.table2 import run_table2
from repro.bench.table3 import run_table3

QUICK = BenchScale.named("quick")


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(QUICK)


@pytest.fixture(scope="module")
def figure5_result():
    return run_figure5(QUICK)


class TestTable1:
    def test_counts_exact(self):
        result = run_table1(QUICK)
        assert any("OK" in note for note in result.shape_notes)
        assert "1004" in result.tables[0]


class TestTable2:
    def test_uniform_distribution_variant(self):
        """§V-A's omitted companion: uniform data behaves the same."""
        result = run_table2(QUICK, distribution="uniform")
        assert "uniform" in result.tables[0]
        gains = [
            cpu.device_time_s / ipu.device_time_s
            for cpu, ipu in zip(
                result.records_for("cpu-munkres"), result.records_for("hunipu")
            )
        ]
        assert gains  # ran end to end; shapes checked at default scale

    def test_unknown_distribution_rejected(self):
        import pytest as _pytest

        from repro.errors import InvalidProblemError

        with _pytest.raises(InvalidProblemError, match="distribution"):
            run_table2(QUICK, distribution="cauchy")

    def test_grid_complete(self, table2_result):
        cells = len(QUICK.table2_sizes) * len(QUICK.table2_k)
        assert len(table2_result.records) == 2 * cells

    def test_both_solvers_present(self, table2_result):
        assert table2_result.records_for("cpu-munkres")
        assert table2_result.records_for("hunipu")

    def test_formats(self, table2_result):
        text = table2_result.format()
        assert "Table II" in text
        assert "gain" in text


class TestFigure5:
    def test_hunipu_dominates(self, figure5_result):
        assert any(
            "HunIPU faster than FastHA in every cell (OK)" in note
            for note in figure5_result.shape_notes
        )

    def test_panels_per_size(self, figure5_result):
        # One rendered chart + one numeric grid per matrix size.
        assert len(figure5_result.tables) == 2 * len(QUICK.figure5_sizes)
        assert "legend" in figure5_result.tables[0]

    def test_runtimes_recorded_for_both(self, figure5_result):
        fast = figure5_result.records_for("fastha")
        ipu = figure5_result.records_for("hunipu")
        assert len(fast) == len(ipu) > 0
        assert all(record.device_time_s > 0 for record in fast + ipu)


class TestTable3:
    def test_runs_and_dominates(self):
        result = run_table3(QUICK)
        assert any("HunIPU faster in every cell (OK)" in n for n in result.shape_notes)
        # Three sub-tables: HighSchool, Voles, MultiMagna.
        assert len(result.tables) == 3
        assert "MultiMagna" in result.tables[2]


class TestBatch:
    @pytest.fixture(scope="class")
    def batch_result(self):
        return run_batch_bench(QUICK)

    def test_results_bit_identical(self, batch_result):
        assert any(
            "bit-identical" in note and "OK" in note
            for note in batch_result.shape_notes
        )

    def test_all_paths_recorded(self, batch_result):
        assert batch_result.records_for("hunipu-sequential")
        assert batch_result.records_for("hunipu-batch")
        assert batch_result.records_for("hunipu-batch-mixed")

    def test_mixed_stream_padded_into_one_group(self, batch_result):
        (mixed,) = batch_result.records_for("hunipu-batch-mixed")
        assert mixed.extra["groups"] == 1
        assert mixed.extra["padded_instances"] > 0

    def test_formats(self, batch_result):
        text = batch_result.format()
        assert "Batch throughput" in text
        assert "inst/s" in text


class TestAblations:
    def test_runs_with_six_studies(self):
        result = run_ablations(QUICK)
        assert len(result.tables) == 6
        assert any("compression" in note for note in result.shape_notes)

    def test_mapping_exchange_analysis(self):
        assert mapping_exchange_bytes(64, 16, "1d") == 0
        assert mapping_exchange_bytes(64, 16, "2d") > 0

    def test_mapping_analysis_rejects_unknown(self):
        with pytest.raises(ValueError):
            mapping_exchange_bytes(64, 16, "3d")
