"""Tests for the rectangular-LSAP reduction."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.baselines.cpu_lapjv import LAPJVSolver
from repro.core.solver import HunIPUSolver
from repro.errors import InvalidProblemError
from repro.ipu.spec import IPUSpec
from repro.lap.rectangular import padding_value, solve_rectangular


@pytest.fixture(scope="module")
def solver():
    return HunIPUSolver(spec=IPUSpec.toy(num_tiles=4))


def _scipy_rect(costs):
    rows, cols = linear_sum_assignment(costs)
    return float(costs[rows, cols].sum())


class TestWide:
    @pytest.mark.parametrize("shape", [(3, 7), (1, 5), (6, 8)])
    def test_matches_scipy(self, solver, rng, shape):
        costs = rng.uniform(1, 20, shape)
        assignment, total = solve_rectangular(solver, costs)
        assert total == pytest.approx(_scipy_rect(costs), abs=1e-7)
        assert assignment.shape == (shape[0],)
        assert len(set(assignment.tolist())) == shape[0]  # distinct columns

    def test_square_passthrough(self, solver, rng):
        costs = rng.uniform(0, 9, (5, 5))
        assignment, total = solve_rectangular(solver, costs)
        assert total == pytest.approx(_scipy_rect(costs), abs=1e-9)


class TestTall:
    @pytest.mark.parametrize("shape", [(7, 3), (5, 1), (8, 6)])
    def test_matches_scipy(self, solver, rng, shape):
        costs = rng.uniform(1, 20, shape)
        assignment, total = solve_rectangular(solver, costs)
        assert total == pytest.approx(_scipy_rect(costs), abs=1e-7)
        matched = assignment[assignment >= 0]
        assert matched.size == shape[1]  # exactly c rows matched
        assert len(set(matched.tolist())) == shape[1]

    def test_unmatched_rows_marked(self, solver, rng):
        costs = rng.uniform(0, 5, (6, 2))
        assignment, _ = solve_rectangular(solver, costs)
        assert (assignment == -1).sum() == 4


class TestValidation:
    def test_rejects_bad_rank(self, solver):
        with pytest.raises(InvalidProblemError):
            solve_rectangular(solver, np.zeros(4))

    def test_works_with_other_solvers(self, rng):
        costs = rng.uniform(1, 9, (4, 6))
        _, total = solve_rectangular(LAPJVSolver(), costs)
        assert total == pytest.approx(_scipy_rect(costs), abs=1e-9)


class TestPaddingValue:
    """Regression: ``max + 1.0`` degenerates once +1.0 rounds away."""

    def test_strictly_above_max_at_moderate_scale(self, rng):
        values = rng.uniform(0, 9, (4, 4))
        assert padding_value(values) > values.max()

    @pytest.mark.parametrize("scale", [1e15, 1e16, 1e18])
    def test_strictly_above_max_at_large_magnitude(self, rng, scale):
        values = rng.uniform(1, 2, (4, 4)) * scale
        pad = padding_value(values)
        assert pad > values.max()  # fails with max() + 1.0 at these scales
        assert np.isfinite(pad)

    def test_finite_near_float_max(self):
        values = np.array([[np.finfo(np.float64).max * 0.5, 1.0], [2.0, 3.0]])
        pad = padding_value(values)
        assert np.isfinite(pad) and pad > values.max()

    def test_solver_sees_pad_above_data(self, rng):
        # End to end: the padded matrix handed to the solver must keep its
        # padding strictly above the data maximum even at 1e16.
        seen = {}

        class SpySolver:
            name = "spy"

            def solve(self, instance):
                seen["costs"] = instance.costs
                from repro.baselines.scipy_reference import ScipySolver

                return ScipySolver().solve(instance)

        costs = rng.uniform(1, 2, (3, 5)) * 1e16
        solve_rectangular(SpySolver(), costs)
        padded = seen["costs"]
        assert padded.max() > costs.max()
        assert (padded[:3, :5] == costs).all()

    def test_large_magnitude_totals_match_scipy(self, solver, rng):
        costs = rng.uniform(1, 2, (3, 5)) * 1e12
        _, total = solve_rectangular(solver, costs)
        assert total == pytest.approx(_scipy_rect(costs), rel=1e-12)
