"""Property suite for the certified-gap auction solver.

The approximate tier's contract is a *bound*, not a promise of optimality:
whatever assignment the auction returns, its cost must never exceed the
scipy optimum by more than the reported ``gap_bound``.  Hypothesis
randomizes sizes, seeds, and cost distributions; the properties here are
the ones the serving layer's gap-aware verification leans on:

* certificate soundness — ``cost ≤ OPT + gap_bound`` always, even when the
  bid budget is exhausted and the matching is finished greedily;
* exactness on convergence — integer matrices converged at ``ε < 1/n``
  report ``gap_bound == 0.0`` exactly and match the optimum;
* determinism — one ``(instance, seed)`` pair is bit-identical across
  runs: same assignment, same cost, same bound, same stats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.lap import APPROX_SOLVER_NAME, solve_auction
from repro.lap.problem import LAPInstance

_sizes = st.integers(1, 12)
_seeds = st.integers(0, 10_000)
_REL = 1e-9
_ABS = 1e-9


def _optimal(costs: np.ndarray) -> float:
    rows, cols = linear_sum_assignment(costs)
    return float(costs[rows, cols].sum())


def _float_costs(size: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 100.0, (size, size))


def _int_costs(size: int, seed: int) -> np.ndarray:
    raw = np.random.default_rng(seed).integers(0, 50, (size, size))
    return raw.astype(np.float64)


def _check_certificate(costs: np.ndarray, result) -> None:
    """The one inequality everything rests on: cost ≤ OPT + gap_bound."""
    optimum = _optimal(costs)
    gap = float(result.stats["gap_bound"])
    tolerance = _ABS + _REL * abs(optimum)
    assert gap >= 0.0
    # The assignment is a real permutation and the cost is its true cost.
    assert sorted(result.assignment.tolist()) == list(range(costs.shape[0]))
    achieved = float(costs[np.arange(costs.shape[0]), result.assignment].sum())
    assert result.total_cost == pytest.approx(achieved, rel=_REL, abs=_ABS)
    # Certificate soundness (two-sided: never better than the optimum).
    assert -tolerance <= result.total_cost - optimum <= gap + tolerance
    # The lower bound in the stats is the same certificate, restated.
    assert result.stats["lower_bound"] <= optimum + tolerance


@settings(max_examples=30, deadline=None)
@given(size=_sizes, seed=_seeds, order_seed=_seeds)
def test_gap_bound_is_sound_on_float_costs(size, seed, order_seed):
    costs = _float_costs(size, seed)
    result = solve_auction(LAPInstance(costs), seed=order_seed)
    assert result.solver == APPROX_SOLVER_NAME
    _check_certificate(costs, result)


@settings(max_examples=30, deadline=None)
@given(size=_sizes, seed=_seeds, order_seed=_seeds)
def test_integer_costs_converge_to_exact_zero_gap(size, seed, order_seed):
    costs = _int_costs(size, seed)
    result = solve_auction(LAPInstance(costs), seed=order_seed)
    assert result.stats["converged"] is True
    assert result.stats["exact"] is True
    # Bitwise zero, not approximately zero: Bertsekas' integer theorem.
    assert result.stats["gap_bound"] == 0.0
    assert result.total_cost == pytest.approx(_optimal(costs), rel=_REL)


@settings(max_examples=15, deadline=None)
@given(size=_sizes, seed=_seeds, order_seed=_seeds)
def test_seeded_runs_are_bit_identical(size, seed, order_seed):
    costs = _float_costs(size, seed)
    first = solve_auction(LAPInstance(costs), seed=order_seed)
    second = solve_auction(LAPInstance(costs.copy()), seed=order_seed)
    assert np.array_equal(first.assignment, second.assignment)
    assert first.total_cost == second.total_cost  # bitwise, no tolerance
    assert first.stats["gap_bound"] == second.stats["gap_bound"]
    assert first.stats["lower_bound"] == second.stats["lower_bound"]
    for key in ("rounds", "bids", "eps_final", "converged", "exact", "seed"):
        assert first.stats[key] == second.stats[key]


@settings(max_examples=15, deadline=None)
@given(size=st.integers(2, 12), seed=_seeds, order_seed=_seeds)
def test_exhausted_bid_budget_keeps_certificate_valid(size, seed, order_seed):
    """Starving the auction widens the bound but never invalidates it."""
    costs = _float_costs(size, seed)
    result = solve_auction(
        LAPInstance(costs), seed=order_seed, max_bids_per_round=1
    )
    _check_certificate(costs, result)


@settings(max_examples=15, deadline=None)
@given(size=_sizes, seed=_seeds, order_seed=_seeds)
def test_different_seeds_share_the_certificate(size, seed, order_seed):
    """Any seed's result must satisfy the same soundness inequality."""
    costs = _float_costs(size, seed)
    result = solve_auction(LAPInstance(costs), seed=order_seed + 1)
    _check_certificate(costs, result)


def test_constant_matrix_shortcut_is_exact():
    """Zero spread: every assignment is optimal, gap must be exactly 0."""
    costs = np.full((6, 6), 7.5)
    result = solve_auction(LAPInstance(costs), seed=3)
    assert result.stats["gap_bound"] == 0.0
    assert result.stats["exact"] is True
    assert result.total_cost == pytest.approx(6 * 7.5)


def test_single_element_matrix():
    result = solve_auction(LAPInstance(np.asarray([[4.25]])), seed=0)
    assert result.assignment.tolist() == [0]
    assert result.total_cost == 4.25
    assert result.stats["gap_bound"] == 0.0


def test_gap_bound_equals_cost_minus_lower_bound():
    """The stats are internally consistent: bound = cost − dual bound."""
    costs = _float_costs(9, seed=17)
    result = solve_auction(LAPInstance(costs), seed=5)
    assert result.stats["gap_bound"] == pytest.approx(
        result.total_cost - result.stats["lower_bound"], rel=1e-12, abs=1e-9
    )
