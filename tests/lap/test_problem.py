"""Tests for the LSAP instance type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidProblemError
from repro.lap.problem import LAPInstance, _next_power_of_two


class TestValidation:
    def test_accepts_square_float_matrix(self):
        instance = LAPInstance(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert instance.size == 2

    def test_rejects_non_square(self):
        with pytest.raises(InvalidProblemError, match="square"):
            LAPInstance(np.zeros((2, 3)))

    def test_rejects_one_dimensional(self):
        with pytest.raises(InvalidProblemError, match="2-D"):
            LAPInstance(np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(InvalidProblemError):
            LAPInstance(np.zeros((0, 0)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidProblemError, match="NaN"):
            LAPInstance(np.array([[np.nan, 1.0], [1.0, 1.0]]))

    def test_rejects_infinity(self):
        with pytest.raises(InvalidProblemError, match="infinity"):
            LAPInstance(np.array([[np.inf, 1.0], [1.0, 1.0]]))

    def test_costs_are_immutable(self):
        instance = LAPInstance(np.ones((3, 3)))
        with pytest.raises(ValueError):
            instance.costs[0, 0] = 5.0

    def test_costs_are_copied(self):
        source = np.ones((3, 3))
        instance = LAPInstance(source)
        source[0, 0] = 99.0
        assert instance.costs[0, 0] == 1.0

    def test_integer_input_converted_to_float(self):
        instance = LAPInstance(np.array([[1, 2], [3, 4]]))
        assert instance.costs.dtype == np.float64


class TestRectangular:
    def test_pads_wide_matrix(self):
        instance = LAPInstance.from_rectangular(np.ones((2, 4)))
        assert instance.size == 4
        assert instance.costs[2:, :].sum() == 0.0

    def test_pads_tall_matrix_with_value(self):
        instance = LAPInstance.from_rectangular(np.ones((4, 2)), pad_value=7.0)
        assert instance.size == 4
        assert np.all(instance.costs[:, 2:] == 7.0)

    def test_rejects_bad_rank(self):
        with pytest.raises(InvalidProblemError):
            LAPInstance.from_rectangular(np.ones(3))


class TestSimilarity:
    def test_transform_preserves_argmax(self):
        similarity = np.array([[0.9, 0.1], [0.2, 0.8]])
        instance = LAPInstance.from_similarity(similarity)
        # Maximizing similarity == matching the diagonal here.
        assert instance.costs[0, 0] < instance.costs[0, 1]
        assert instance.costs[1, 1] < instance.costs[1, 0]

    def test_costs_non_negative(self):
        similarity = np.array([[-3.0, 2.0], [0.5, -1.0]])
        instance = LAPInstance.from_similarity(similarity)
        assert instance.costs.min() >= 0.0

    def test_rejects_nan_similarity(self):
        with pytest.raises(InvalidProblemError):
            LAPInstance.from_similarity(np.array([[np.nan]]))

    def test_rectangular_similarity_padded(self):
        instance = LAPInstance.from_similarity(np.ones((2, 3)))
        assert instance.size == 3

    def test_rectangular_padding_is_worst_match(self):
        # Regression: the padding block must cost max(S) (zero similarity),
        # not 0 (a free, maximally attractive assignment).
        similarity = np.array([[0.9, 0.2, 0.7], [0.1, 0.8, 0.3]])
        instance = LAPInstance.from_similarity(similarity)
        top = similarity.max()
        np.testing.assert_allclose(instance.costs[:2, :], top - similarity)
        np.testing.assert_allclose(instance.costs[2, :], top)

    def test_tall_similarity_padding_is_worst_match(self):
        similarity = np.array([[5.0], [1.0], [3.0]])
        instance = LAPInstance.from_similarity(similarity)
        assert instance.size == 3
        np.testing.assert_allclose(instance.costs[:, 0], 5.0 - similarity[:, 0])
        np.testing.assert_allclose(instance.costs[:, 1:], 5.0)

    def test_rectangular_padding_preserves_optimal_matching(self):
        # The padded square optimum restricted to real rows/columns must be
        # the optimal similarity matching of the rectangular input.
        from scipy.optimize import linear_sum_assignment

        similarity = np.array([[0.9, 0.2, 0.3], [0.8, 0.1, 0.6]])  # 2x3
        instance = LAPInstance.from_similarity(similarity)
        rows, cols = linear_sum_assignment(instance.costs)
        total_similarity = sum(
            similarity[r, c] for r, c in zip(rows, cols) if r < 2 and c < 3
        )
        # Optimal real matching: rows (0, 1) -> columns (0, 2) = 0.9 + 0.6.
        assert total_similarity == pytest.approx(1.5)


class TestPowerOfTwoPadding:
    @pytest.mark.parametrize(
        "value,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (512, 512), (513, 1024)]
    )
    def test_next_power_of_two(self, value, expected):
        assert _next_power_of_two(value) == expected

    def test_pad_to_power_of_two(self):
        instance = LAPInstance(np.ones((5, 5)))
        padded = instance.padded_to_power_of_two()
        assert padded.size == 8
        assert np.all(padded.costs[:5, :5] == 1.0)
        assert np.all(padded.costs[5:, :] == 0.0)

    def test_already_power_of_two_is_identity(self):
        instance = LAPInstance(np.ones((4, 4)))
        assert instance.padded_to_power_of_two() is instance

    def test_is_power_of_two_flag(self):
        assert LAPInstance(np.ones((8, 8))).is_power_of_two
        assert not LAPInstance(np.ones((6, 6))).is_power_of_two


class TestTotalCost:
    def test_total_cost_of_assignment(self):
        instance = LAPInstance(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert instance.total_cost(np.array([1, 0])) == 5.0

    def test_rejects_wrong_shape(self):
        instance = LAPInstance(np.ones((3, 3)))
        with pytest.raises(InvalidProblemError):
            instance.total_cost(np.array([0, 1]))

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 12), seed=st.integers(0, 10_000))
    def test_total_cost_matches_manual_sum(self, n, seed):
        gen = np.random.default_rng(seed)
        costs = gen.uniform(0, 10, (n, n))
        assignment = gen.permutation(n)
        instance = LAPInstance(costs)
        manual = sum(costs[i, assignment[i]] for i in range(n))
        assert instance.total_cost(assignment) == pytest.approx(manual)

    def test_minus_one_skips_unassigned_rows(self):
        # Regression: -1 ("row unassigned", solve_rectangular's convention
        # for tall problems) must be skipped, not charged as the LAST
        # column via numpy negative indexing.
        instance = LAPInstance(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert instance.total_cost(np.array([0, -1])) == 1.0
        assert instance.total_cost(np.array([-1, -1])) == 0.0

    def test_rejects_out_of_range_indices(self):
        instance = LAPInstance(np.ones((3, 3)))
        with pytest.raises(InvalidProblemError, match="outside"):
            instance.total_cost(np.array([0, 1, 3]))
        with pytest.raises(InvalidProblemError, match="outside"):
            instance.total_cost(np.array([0, 1, -2]))

    def test_minus_one_consistent_with_solve_rectangular(self):
        # Tall problem: solve_rectangular marks unmatched rows -1; scoring
        # its assignment on the row-square cost block must equal its total.
        from repro.baselines.scipy_reference import ScipySolver
        from repro.lap.rectangular import solve_rectangular

        costs = np.array([[4.0, 1.0], [2.0, 3.0], [5.0, 6.0]])
        assignment, total = solve_rectangular(ScipySolver(), costs)
        assert (assignment == -1).sum() == 1
        square = LAPInstance(np.pad(costs, ((0, 0), (0, 1)), constant_values=0.0))
        matched_sum = sum(
            costs[i, j] for i, j in enumerate(assignment) if j >= 0
        )
        assert square.total_cost(assignment) == pytest.approx(matched_sum)
        assert total == pytest.approx(matched_sum)
