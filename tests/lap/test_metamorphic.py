"""Metamorphic properties of the optimal assignment cost.

These relations must hold for *any* correct LAP solver, with no oracle in
the loop: transposing the matrix, permuting rows or columns, shifting every
entry by a constant, or scaling by a positive factor transforms the optimal
cost in a closed form.  Randomized over seeds and sizes with hypothesis;
a single module-level solver reuses compiled graphs across examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import HunIPUSolver
from repro.lap.problem import LAPInstance

_SOLVER = HunIPUSolver()

_sizes = st.integers(4, 10)
_seeds = st.integers(0, 10_000)

_REL = 1e-9


def _costs(size: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(1.0, 100.0, (size, size))


def _optimal(costs: np.ndarray) -> float:
    return _SOLVER.solve(LAPInstance(costs)).total_cost


@settings(max_examples=10, deadline=None)
@given(size=_sizes, seed=_seeds)
def test_transpose_preserves_cost(size, seed):
    costs = _costs(size, seed)
    assert _optimal(costs.T.copy()) == pytest.approx(_optimal(costs), rel=_REL)


@settings(max_examples=10, deadline=None)
@given(size=_sizes, seed=_seeds, perm_seed=_seeds)
def test_row_permutation_preserves_cost(size, seed, perm_seed):
    costs = _costs(size, seed)
    perm = np.random.default_rng(perm_seed).permutation(size)
    assert _optimal(costs[perm]) == pytest.approx(_optimal(costs), rel=_REL)


@settings(max_examples=10, deadline=None)
@given(size=_sizes, seed=_seeds, perm_seed=_seeds)
def test_column_permutation_preserves_cost(size, seed, perm_seed):
    costs = _costs(size, seed)
    perm = np.random.default_rng(perm_seed).permutation(size)
    assert _optimal(costs[:, perm]) == pytest.approx(
        _optimal(costs), rel=_REL
    )


@settings(max_examples=10, deadline=None)
@given(size=_sizes, seed=_seeds, shift=st.floats(-50.0, 50.0, width=32))
def test_constant_shift_moves_cost_by_n_times_shift(size, seed, shift):
    # Keep entries positive so the shifted matrix stays a valid instance.
    costs = _costs(size, seed) + 60.0
    expected = _optimal(costs) + size * float(shift)
    assert _optimal(costs + shift) == pytest.approx(expected, rel=1e-7)


@settings(max_examples=10, deadline=None)
@given(size=_sizes, seed=_seeds, scale=st.floats(0.25, 8.0, width=32))
def test_positive_scaling_scales_cost(size, seed, scale):
    costs = _costs(size, seed)
    expected = float(scale) * _optimal(costs)
    assert _optimal(costs * scale) == pytest.approx(expected, rel=1e-7)


@settings(max_examples=8, deadline=None)
@given(size=_sizes, seed=_seeds)
def test_composed_transforms(size, seed):
    """Transpose ∘ permutation ∘ scaling composes the individual relations."""
    costs = _costs(size, seed)
    perm = np.random.default_rng(seed + 1).permutation(size)
    transformed = (2.0 * costs[perm]).T.copy()
    assert _optimal(transformed) == pytest.approx(
        2.0 * _optimal(costs), rel=1e-7
    )
