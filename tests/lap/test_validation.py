"""Tests for matching validity and duality certificates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cpu_lapjv import solve_lapjv
from repro.errors import SolverError
from repro.lap.problem import LAPInstance
from repro.lap.result import AssignmentResult
from repro.lap.validation import (
    check_optimality,
    check_perfect_matching,
    check_potentials,
    extract_potentials,
)


class TestPerfectMatching:
    def test_accepts_permutation(self):
        check_perfect_matching(np.array([2, 0, 1]), 3)

    def test_rejects_repeat(self):
        with pytest.raises(SolverError, match="repeats"):
            check_perfect_matching(np.array([0, 0, 1]), 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(SolverError, match="out-of-range"):
            check_perfect_matching(np.array([0, 3]), 2)

    def test_rejects_wrong_length(self):
        with pytest.raises(SolverError, match="shape"):
            check_perfect_matching(np.array([0, 1]), 3)


class TestPotentials:
    def test_valid_certificate_passes(self):
        costs = np.array([[4.0, 1.0], [2.0, 3.0]])
        instance = LAPInstance(costs)
        assignment, u, v = solve_lapjv(costs)
        check_potentials(instance, u, v, assignment)

    def test_infeasible_duals_rejected(self):
        instance = LAPInstance(np.array([[1.0, 1.0], [1.0, 1.0]]))
        u = np.array([10.0, 0.0])
        v = np.zeros(2)
        with pytest.raises(SolverError, match="infeasible"):
            check_potentials(instance, u, v, np.array([0, 1]))

    def test_slack_on_matched_edge_rejected(self):
        instance = LAPInstance(np.array([[1.0, 5.0], [5.0, 1.0]]))
        u = np.zeros(2)
        v = np.zeros(2)
        # Feasible but not tight on the (suboptimal) anti-diagonal matching.
        with pytest.raises(SolverError, match="slackness"):
            check_potentials(instance, u, v, np.array([1, 0]))

    def test_extract_from_reduced_slack(self):
        costs = np.array([[3.0, 7.0], [5.0, 2.0]])
        instance = LAPInstance(costs)
        u_true = np.array([1.0, 2.0])
        v_true = np.array([0.5, -1.0])
        slack = costs - u_true[:, None] - v_true[None, :]
        u, v = extract_potentials(instance, slack)
        assert np.allclose(u[:, None] + v[None, :], u_true[:, None] + v_true[None, :])

    def test_extract_rejects_corrupt_slack(self):
        instance = LAPInstance(np.ones((3, 3)))
        corrupt = np.zeros((3, 3))
        corrupt[2, 2] = 0.5  # not expressible as u_i + v_j
        with pytest.raises(SolverError, match="potential reduction"):
            extract_potentials(instance, corrupt)

    def test_extract_rejects_shape_mismatch(self):
        instance = LAPInstance(np.ones((3, 3)))
        with pytest.raises(SolverError, match="shape"):
            extract_potentials(instance, np.zeros((2, 2)))


class TestOptimality:
    def test_optimal_assignment_passes(self):
        costs = np.array([[4.0, 1.0], [2.0, 3.0]])
        result = AssignmentResult(np.array([1, 0]), 3.0, "t")
        check_optimality(LAPInstance(costs), result)

    def test_suboptimal_assignment_rejected(self):
        costs = np.array([[4.0, 1.0], [2.0, 3.0]])
        result = AssignmentResult(np.array([0, 1]), 7.0, "t")
        with pytest.raises(SolverError, match="exceeds the optimum"):
            check_optimality(LAPInstance(costs), result)

    def test_misreported_cost_rejected(self):
        costs = np.array([[4.0, 1.0], [2.0, 3.0]])
        result = AssignmentResult(np.array([1, 0]), 99.0, "t")
        with pytest.raises(SolverError, match="disagrees"):
            check_optimality(LAPInstance(costs), result)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 10), seed=st.integers(0, 10_000))
    def test_lapjv_duals_certify_on_random_instances(self, n, seed):
        gen = np.random.default_rng(seed)
        costs = gen.uniform(0, 100, (n, n))
        instance = LAPInstance(costs)
        assignment, u, v = solve_lapjv(costs)
        check_potentials(instance, u, v, assignment)
        result = AssignmentResult(assignment, instance.total_cost(assignment), "jv")
        check_optimality(instance, result)
