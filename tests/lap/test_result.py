"""Tests for the shared assignment-result type."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lap.result import AssignmentResult


def _result(assignment, cost=0.0, **kwargs):
    return AssignmentResult(
        assignment=np.asarray(assignment), total_cost=cost, solver="test", **kwargs
    )


class TestConstruction:
    def test_assignment_frozen(self):
        result = _result([1, 0])
        with pytest.raises(ValueError):
            result.assignment[0] = 5

    def test_rejects_matrix_assignment(self):
        with pytest.raises(SolverError):
            _result(np.zeros((2, 2), dtype=int))

    def test_size(self):
        assert _result([2, 0, 1]).size == 3

    def test_total_cost_coerced_to_float(self):
        assert isinstance(_result([0], cost=np.float32(3)).total_cost, float)


class TestViews:
    def test_row_for_column_inverse(self):
        result = _result([2, 0, 1])
        assert list(result.row_for_column) == [1, 2, 0]

    def test_matching_matrix_is_permutation_matrix(self):
        result = _result([1, 2, 0])
        matrix = result.matching_matrix()
        assert matrix.sum() == 3
        assert np.all(matrix.sum(axis=0) == 1)
        assert np.all(matrix.sum(axis=1) == 1)
        assert matrix[0, 1] == 1


class TestRestriction:
    def test_restrict_padded_result(self):
        result = _result([1, 0, 2, 3])
        restricted = result.restricted_to(2)
        assert list(restricted.assignment) == [1, 0]

    def test_restrict_rejects_cross_boundary_match(self):
        result = _result([3, 0, 2, 1])  # row 0 matched to padding column 3
        with pytest.raises(SolverError, match="padding"):
            result.restricted_to(2)

    def test_restrict_rejects_growth(self):
        with pytest.raises(SolverError):
            _result([0]).restricted_to(5)
