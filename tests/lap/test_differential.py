"""Property-based differential tests: every solver facade vs. the oracle.

Each library solver must agree with ``scipy.optimize.linear_sum_assignment``
on the optimal total — including on the inputs that exposed real bugs in
this codebase: negative costs, large constant offsets, rectangular shapes,
and similarity matrices.  The batch engine must additionally return
bit-identical results to solving the same stream one instance at a time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.baselines import (
    CPUHungarianSolver,
    DateNagiSolver,
    FastHASolver,
    LAPJVSolver,
    ScipySolver,
)
from repro.batch import BatchSolver
from repro.core.solver import HunIPUSolver
from repro.ipu.spec import IPUSpec
from repro.lap.problem import LAPInstance
from repro.lap.rectangular import solve_rectangular
from repro.lap.validation import check_perfect_matching

# One shared instance per facade: compiled-graph caches (HunIPU) and device
# state are designed for reuse, and hypothesis replays many examples.
_SOLVERS = {
    "hunipu": HunIPUSolver(spec=IPUSpec.toy(num_tiles=4)),
    "cpu": CPUHungarianSolver(),
    "lapjv": LAPJVSolver(),
    "date-nagi": DateNagiSolver(),
    "fastha": FastHASolver(),
    "scipy": ScipySolver(),
}


def _optimum(costs):
    rows, cols = linear_sum_assignment(costs)
    return float(costs[rows, cols].sum())


def _size_for(name, n):
    # FastHA's kernels assume 2^m instances (§V-C); the padded facade solves
    # the padded problem verbatim, so differential-test it on its native
    # power-of-two sizes instead.
    if name == "fastha":
        return 1 << (n.bit_length() - 1)
    return n


def _solve(name, instance):
    return _SOLVERS[name].solve(instance)


def _costs(n, seed, offset, scale):
    gen = np.random.default_rng(seed)
    return offset + gen.uniform(0, scale, (n, n))


@pytest.mark.parametrize("name", sorted(_SOLVERS))
class TestSquareDifferential:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 10), seed=st.integers(0, 10_000))
    def test_uniform_costs(self, name, n, seed):
        n = _size_for(name, n)
        costs = _costs(n, seed, 0.0, 100.0)
        result = _solve(name, LAPInstance(costs))
        check_perfect_matching(result.assignment, n)
        assert result.total_cost == pytest.approx(_optimum(costs), abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 8), seed=st.integers(0, 10_000))
    def test_negative_costs(self, name, n, seed):
        n = _size_for(name, n)
        costs = _costs(n, seed, -50.0, 40.0)
        result = _solve(name, LAPInstance(costs))
        assert result.total_cost == pytest.approx(_optimum(costs), abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 8),
        seed=st.integers(0, 10_000),
        offset=st.sampled_from([-1e9, 1e9]),
    )
    def test_large_offset(self, name, n, seed, offset):
        # Integer payload on a huge offset: exact optimum is representable,
        # so any tie-breaking drift from sloppy normalization shows up.
        if name in ("cpu", "date-nagi", "fastha"):
            pytest.skip(
                "reference baselines use zero_tolerance ~ 1e-9 * max|c|, so "
                "unit gaps on a 1e9 offset are modeled as ties by design"
            )
        gen = np.random.default_rng(seed)
        costs = offset + gen.integers(0, 10, (n, n)).astype(np.float64)
        result = _solve(name, LAPInstance(costs))
        assert result.total_cost == pytest.approx(_optimum(costs), abs=1e-3)

    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.integers(1, 6), cols=st.integers(1, 6), seed=st.integers(0, 10_000)
    )
    def test_rectangular(self, name, rows, cols, seed):
        if name == "fastha":
            pytest.skip("fastha solves square power-of-two instances only")
        costs = np.random.default_rng(seed).uniform(1, 20, (rows, cols))
        _, total = solve_rectangular(_SOLVERS[name], costs)
        assert total == pytest.approx(_optimum(costs), abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 8), seed=st.integers(0, 10_000))
    def test_similarity_maximization(self, name, n, seed):
        n = _size_for(name, n)
        similarity = np.random.default_rng(seed).uniform(-1, 1, (n, n))
        result = _solve(name, LAPInstance.from_similarity(similarity))
        rows, cols = linear_sum_assignment(similarity, maximize=True)
        best = float(similarity[rows, cols].sum())
        achieved = float(similarity[np.arange(n), result.assignment].sum())
        assert achieved == pytest.approx(best, abs=1e-6)


class TestBatchEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(2, 10),
        count=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    def test_batch_matches_one_by_one(self, n, count, seed):
        gen = np.random.default_rng(seed)
        instances = [
            LAPInstance(gen.uniform(-10, 90, (n, n))) for _ in range(count)
        ]
        solver = _SOLVERS["hunipu"]
        single = [solver.solve(instance) for instance in instances]
        batch = BatchSolver(solver).solve_batch(instances)
        for one, many in zip(single, batch.results):
            assert np.array_equal(one.assignment, many.assignment)
            assert one.total_cost == many.total_cost

    @settings(max_examples=6, deadline=None)
    @given(
        sizes=st.lists(st.integers(2, 7), min_size=1, max_size=5),
        seed=st.integers(0, 10_000),
    )
    def test_mixed_size_batch_is_optimal(self, sizes, seed):
        gen = np.random.default_rng(seed)
        instances = [LAPInstance(gen.uniform(0, 30, (n, n))) for n in sizes]
        batch = BatchSolver(_SOLVERS["hunipu"]).solve_batch(instances)
        for instance, result in zip(instances, batch.results):
            check_perfect_matching(result.assignment, instance.size)
            assert result.total_cost == pytest.approx(
                _optimum(instance.costs), abs=1e-6
            )
