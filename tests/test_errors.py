"""Tests for the exception hierarchy and the package facade."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        subtypes = [
            errors.InvalidProblemError,
            errors.SolverError,
            errors.GraphConstructionError,
            errors.CompilationError,
            errors.TileMemoryError,
            errors.ExecutionError,
            errors.MappingError,
            errors.GPUSimulationError,
        ]
        for subtype in subtypes:
            assert issubclass(subtype, errors.ReproError)

    def test_tile_memory_is_compilation_error(self):
        assert issubclass(errors.TileMemoryError, errors.CompilationError)

    def test_value_error_compatibility(self):
        """Validation errors double as ValueError for idiomatic catching."""
        assert issubclass(errors.InvalidProblemError, ValueError)
        assert issubclass(errors.MappingError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(errors.SolverError, RuntimeError)
        assert issubclass(errors.ExecutionError, RuntimeError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.TileMemoryError("boom")


class TestPackageFacade:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_solver_classes_have_names(self):
        assert repro.HunIPUSolver.name == "hunipu"
        assert repro.CPUHungarianSolver.name == "cpu-munkres"
        assert repro.FastHASolver.name == "fastha"
        assert repro.LAPJVSolver.name == "cpu-lapjv"
        assert repro.ScipySolver.name == "scipy-oracle"
