"""Cross-solver integration tests: every solver, same instances, one truth.

This is the library's master differential harness: HunIPU (simulated IPU),
FastHA (simulated A100), the CPU Munkres, LAPJV and the scipy oracle all
solve the same instances and must agree on the optimal total cost, each
producing a valid perfect matching.
"""

import numpy as np
import pytest

from repro.baselines.cpu_hungarian import CPUHungarianSolver
from repro.baselines.cpu_lapjv import LAPJVSolver
from repro.baselines.fastha import FastHASolver
from repro.baselines.scipy_reference import ScipySolver
from repro.core.solver import HunIPUSolver
from repro.data.synthetic import gaussian_instance, uniform_instance
from repro.ipu.spec import IPUSpec
from repro.lap.problem import LAPInstance
from repro.lap.validation import check_perfect_matching

SOLVERS = [
    HunIPUSolver(spec=IPUSpec.toy(num_tiles=4)),
    CPUHungarianSolver(),
    LAPJVSolver(),
    ScipySolver(),
]


def _agreeing_cost(instance):
    costs = []
    for solver in SOLVERS:
        result = solver.solve(instance)
        check_perfect_matching(result.assignment, instance.size)
        costs.append(result.total_cost)
    baseline = costs[-1]  # scipy
    for solver, cost in zip(SOLVERS, costs):
        assert cost == pytest.approx(baseline, rel=1e-9, abs=1e-6), solver.name
    return baseline


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_gaussian_instances(self, seed):
        _agreeing_cost(gaussian_instance(24, 100, seed=seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_uniform_instances(self, seed):
        _agreeing_cost(uniform_instance(17, 10, seed=seed))

    @pytest.mark.parametrize("k", [1, 1000])
    def test_extreme_value_ranges(self, k):
        _agreeing_cost(gaussian_instance(16, k, seed=0))

    def test_power_of_two_with_fastha_included(self):
        instance = gaussian_instance(16, 10, seed=3)
        reference = _agreeing_cost(instance)
        fast = FastHASolver().solve(instance)
        assert fast.total_cost == pytest.approx(reference, rel=1e-9)

    def test_tie_heavy_instance(self):
        costs = np.random.default_rng(0).integers(0, 3, (16, 16)).astype(float)
        _agreeing_cost(LAPInstance(costs))

    def test_structured_instance_diagonal_optimal(self):
        n = 12
        costs = np.full((n, n), 9.0)
        np.fill_diagonal(costs, 1.0)
        for solver in SOLVERS:
            result = solver.solve(LAPInstance(costs))
            assert list(result.assignment) == list(range(n))


class TestDeviceTimeOrdering:
    """The paper's headline: IPU < GPU < CPU once n is large enough.

    The GPU/CPU crossover sits between n = 256 and n = 512 in this model
    (small kernels are launch-bound, so the CPU wins small instances —
    consistent with the paper only reporting GPU wins from n = 512 up).
    """

    def test_hunipu_fastest_at_every_size(self):
        for n in (128, 256):
            instance = gaussian_instance(n, 100, seed=1)
            hunipu = HunIPUSolver().solve(instance)
            fastha = FastHASolver().solve(instance)
            cpu = CPUHungarianSolver().solve(instance)
            assert hunipu.device_time_s < fastha.device_time_s
            assert hunipu.device_time_s < cpu.device_time_s

    def test_gpu_overtakes_cpu_at_paper_sizes(self):
        instance = gaussian_instance(512, 100, seed=1)
        fastha = FastHASolver().solve(instance)
        cpu = CPUHungarianSolver().solve(instance)
        assert fastha.device_time_s < cpu.device_time_s

    def test_gain_grows_with_value_range(self):
        """Table II's k-shape: k=1 (dense ties) yields the smallest gain."""
        gains = {}
        for k in (1, 1000):
            instance = gaussian_instance(192, k, seed=2)
            hunipu = HunIPUSolver().solve(instance)
            cpu = CPUHungarianSolver().solve(instance)
            gains[k] = cpu.device_time_s / hunipu.device_time_s
        assert gains[1000] > gains[1]
