"""Tests for the perf-regression harness (`repro.obs.perf`).

The headline acceptance property: an unchanged re-run passes the default
budgets, and a synthetically injected 2x slowdown fails them — a gate
that cannot fire is no gate.  Around that sit the building blocks: the
alternating-minimum timing estimator, the per-kind budgets, the
schema-validated trend store, and the bench-document ingest path.
"""

import json

import pytest

from repro.obs.export import PERF_SCHEMA, validate_document
from repro.obs.perf import (
    DEFAULT_BUDGETS,
    AlternatingTiming,
    Budget,
    PerfStore,
    alternating_minimum,
    budgets_with_ratio,
    compare_runs,
    format_report,
    format_trend,
    run_suite,
    runs_from_bench_document,
)


def _run(benchmark="solve/n16", metrics=None, **context_overrides):
    context = {
        "git_rev": "abc1234",
        "timestamp": "2026-08-08T00:00:00+00:00",
        "scale": "quick",
        "rounds": 3,
        "source": "suite",
    }
    context.update(context_overrides)
    return {
        "benchmark": benchmark,
        "params": {"n": 16},
        "metrics": metrics
        or {"wall_seconds": 0.01, "device_seconds": 3.4e-05, "supersteps": 200},
        "context": context,
    }


class TestAlternatingMinimum:
    def test_alternates_within_rounds(self):
        order = []
        timings = alternating_minimum(
            {
                "a": lambda: order.append("a") or 1.0,
                "b": lambda: order.append("b") or 2.0,
            },
            rounds=3,
        )
        assert order == ["a", "b", "a", "b", "a", "b"]
        assert timings["a"].rounds == (1.0, 1.0, 1.0)
        assert timings["b"].best == 2.0

    def test_best_is_the_minimum_round(self):
        walls = iter([5.0, 1.0, 3.0])
        timings = alternating_minimum({"t": lambda: next(walls)}, rounds=3)
        assert timings["t"].best == 1.0
        assert timings["t"].rounds == (5.0, 1.0, 3.0)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError, match="at least one"):
            alternating_minimum({"t": lambda: 1.0}, rounds=0)

    def test_timing_dataclass(self):
        assert AlternatingTiming((2.0, 1.5)).best == 1.5


class TestBudgets:
    def test_wall_one_sided(self):
        budget = Budget("wall", max_ratio=1.5)
        assert budget.check(1.0, 1.4) == (True, pytest.approx(1.4))
        assert budget.check(1.0, 1.6)[0] is False
        # Getting faster never fails a wall budget.
        assert budget.check(1.0, 0.1)[0] is True

    def test_throughput_inverted(self):
        budget = Budget("throughput", max_ratio=1.5)
        assert budget.check(100.0, 80.0)[0] is True  # 1.25x slower
        assert budget.check(100.0, 50.0)[0] is False  # 2x slower
        assert budget.check(100.0, 200.0)[0] is True  # faster is fine

    def test_model_two_sided(self):
        budget = Budget("model")
        assert budget.check(1e-4, 1e-4)[0] is True
        assert budget.check(1e-4, 1e-4 * (1 + 1e-3))[0] is False
        # An *improvement* also trips the model budget: re-record it.
        assert budget.check(1e-4, 1e-4 * (1 - 1e-3))[0] is False

    def test_exact(self):
        budget = Budget("exact")
        assert budget.check(200, 200)[0] is True
        assert budget.check(200, 201)[0] is False

    def test_widening_spares_deterministic_kinds(self):
        widened = budgets_with_ratio(10.0)
        assert widened["wall_seconds"].max_ratio == 10.0
        assert widened["instances_per_second"].max_ratio == 10.0
        assert widened["device_seconds"] == DEFAULT_BUDGETS["device_seconds"]
        assert widened["supersteps"] == DEFAULT_BUDGETS["supersteps"]


class TestPerfStore:
    def test_fresh_store_is_valid_empty_document(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        assert store.runs == []
        validate_document(store.document)
        assert store.document["schema"] == PERF_SCHEMA

    def test_append_save_reload_round_trip(self, tmp_path):
        path = tmp_path / "trends.json"
        store = PerfStore(path)
        assert store.append([_run(), _run("solve/n32")]) == 2
        store.save()
        reloaded = PerfStore(path)
        assert len(reloaded.runs) == 2
        assert reloaded.benchmarks() == ("solve/n16", "solve/n32")

    def test_latest_returns_most_recent(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run(metrics={"wall_seconds": 1.0})])
        store.append([_run(metrics={"wall_seconds": 2.0})])
        assert store.latest("solve/n16")["metrics"]["wall_seconds"] == 2.0
        assert store.latest("ghost") is None

    def test_append_validates(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        with pytest.raises(ValueError):
            store.append([{"benchmark": "x"}])  # missing metrics/context

    def test_rejects_corrupt_store(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.perf/1", "runs": {}}))
        with pytest.raises(ValueError):
            PerfStore(path)


class TestCompareRuns:
    def test_unchanged_rerun_passes(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run()])
        report = compare_runs(store, [_run()])
        assert report.ok
        assert not report.regressions
        assert "PASS" in format_report(report)

    def test_injected_2x_slowdown_fails(self, tmp_path):
        # The acceptance criterion: the same fresh runs that pass
        # unchanged must fail under a synthetic 2x wall slowdown.
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run()])
        report = compare_runs(store, [_run()], inject_slowdown=2.0)
        assert not report.ok
        failed = {c.metric for c in report.regressions}
        assert "wall_seconds" in failed
        assert "FAIL" in format_report(report)

    def test_injection_spares_deterministic_metrics(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run()])
        report = compare_runs(store, [_run()], inject_slowdown=2.0)
        by_metric = {c.metric: c for c in report.comparisons}
        assert by_metric["device_seconds"].ok
        assert by_metric["supersteps"].ok

    def test_injection_hits_throughput_inversely(self, tmp_path):
        metrics = {"wall_seconds": 0.06, "instances_per_second": 200.0}
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run("batch/x", metrics=metrics)])
        report = compare_runs(
            store, [_run("batch/x", metrics=metrics)], inject_slowdown=2.0
        )
        by_metric = {c.metric: c for c in report.comparisons}
        assert by_metric["instances_per_second"].fresh == pytest.approx(100.0)
        assert not by_metric["instances_per_second"].ok

    def test_real_device_seconds_drift_fails(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run()])
        drifted = _run(
            metrics={"wall_seconds": 0.01, "device_seconds": 3.6e-05, "supersteps": 200}
        )
        report = compare_runs(store, [drifted])
        assert not report.ok
        assert report.regressions[0].metric == "device_seconds"
        assert report.regressions[0].kind == "model"

    def test_missing_baseline_passes_but_is_reported(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        report = compare_runs(store, [_run("brand/new")])
        assert report.ok
        assert report.missing_baselines == ("brand/new",)
        assert "no baseline" in format_report(report)

    def test_unbudgeted_metrics_are_informational(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run(metrics={"wall_seconds": 0.01, "exotic": 5.0})])
        fresh = _run(metrics={"wall_seconds": 0.01, "exotic": 9000.0})
        report = compare_runs(store, [fresh])
        assert report.ok
        assert "solve/n16:exotic" in report.skipped_metrics

    def test_widened_budget_absorbs_noise(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run(metrics={"wall_seconds": 0.01})])
        noisy = _run(metrics={"wall_seconds": 0.05})  # 5x: fails default
        assert not compare_runs(store, [noisy]).ok
        assert compare_runs(store, [noisy], budgets_with_ratio(10.0)).ok


class TestSuiteAndIngest:
    def test_run_suite_quick_end_to_end(self, tmp_path):
        runs = run_suite("quick", rounds=1)
        names = [run["benchmark"] for run in runs]
        assert any(name.startswith("solve/") for name in names)
        assert any(name.startswith("batch/") for name in names)
        for run in runs:
            assert run["metrics"]["wall_seconds"] > 0
            assert run["metrics"]["device_seconds"] > 0
            assert run["metrics"]["supersteps"] > 0
            assert run["context"]["source"] == "suite"
        # The suite's rows validate as a store document and re-compare
        # bit-identically on the deterministic metrics.
        store = PerfStore(tmp_path / "trends.json")
        store.append(runs)
        report = compare_runs(store, runs)
        assert report.ok

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown perf suite scale"):
            run_suite("galactic")

    def test_ingest_bench_document(self):
        document = {
            "schema": "repro.bench-run/1",
            "experiment": "batch",
            "scale": "quick",
            "environment": {},
            "records": [
                {
                    "experiment": "batch",
                    "solver": "hunipu-batch",
                    "params": {"n": 16, "count": 12},
                    "device_time_s": 4e-4,
                    "wall_time_s": 0.06,
                    "extra": {
                        "wall_per_instance_s": 0.005,
                        "instances_per_second": 200.0,
                    },
                },
            ],
            "shape_notes": [],
        }
        (run,) = runs_from_bench_document(document)
        assert run["benchmark"] == "bench/batch/hunipu-batch"
        assert run["metrics"]["wall_seconds"] == 0.06
        assert run["metrics"]["device_seconds"] == 4e-4
        assert run["metrics"]["instances_per_second"] == 200.0
        assert run["context"]["source"] == "bench"


class TestTrendReport:
    def test_format_trend_lists_history(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run(git_rev="aaaa111"), _run(git_rev="bbbb222")])
        text = format_trend(store)
        assert "solve/n16 (2 run(s))" in text
        assert "aaaa111" in text
        assert "bbbb222" in text

    def test_single_benchmark_filter(self, tmp_path):
        store = PerfStore(tmp_path / "trends.json")
        store.append([_run(), _run("solve/n32")])
        text = format_trend(store, "solve/n32")
        assert "solve/n32" in text
        assert "solve/n16" not in text
