"""Tests for the shared wall-clock timing helper."""

import time

from repro.obs.timing import WallTimer, wall_timer


class TestWallTimer:
    def test_context_manager_measures(self):
        with wall_timer() as timer:
            time.sleep(0.005)
        assert timer.seconds >= 0.004
        assert not timer.running

    def test_frozen_after_exit(self):
        with wall_timer() as timer:
            pass
        frozen = timer.seconds
        time.sleep(0.002)
        assert timer.seconds == frozen

    def test_live_while_running(self):
        timer = WallTimer()
        assert timer.seconds == 0.0
        with timer:
            assert timer.running
            first = timer.seconds
            time.sleep(0.002)
            assert timer.seconds > first

    def test_explicit_start_stop(self):
        timer = wall_timer().start()
        assert timer.running
        time.sleep(0.002)
        elapsed = timer.stop()
        assert elapsed >= 0.001
        assert timer.seconds == elapsed

    def test_reusable(self):
        timer = WallTimer()
        with timer:
            time.sleep(0.003)
        first = timer.seconds
        with timer:
            pass
        assert timer.seconds < first


class TestSolverWiring:
    def test_all_solvers_report_wall_time(self):
        import numpy as np

        from repro.baselines import (
            CPUHungarianSolver,
            DateNagiSolver,
            FastHASolver,
            LAPJVSolver,
            ScipySolver,
        )
        from repro.core import HunIPUSolver
        from repro.lap.problem import LAPInstance

        rng = np.random.default_rng(0)
        instance = LAPInstance(rng.uniform(1, 100, size=(8, 8)))
        for solver in (
            HunIPUSolver(),
            CPUHungarianSolver(),
            FastHASolver(),
            DateNagiSolver(),
            LAPJVSolver(),
            ScipySolver(),
        ):
            result = solver.solve(instance)
            assert result.wall_time_s > 0.0, solver.name
