"""Tests for the metrics registry and its instruments."""

import pytest

from repro.core import HunIPUSolver
from repro.data.synthetic import gaussian_instance
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3.0

    def test_histogram_buckets_cumulative(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        assert histogram.min == 0.5
        assert histogram.max == 500
        # Cumulative: <=1, <=10, <=100, +Inf.
        assert histogram.bucket_counts == (1, 2, 3, 4)
        assert histogram.mean == pytest.approx(555.5 / 4)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        first.inc()
        assert registry.counter("x") is first
        assert registry.counter("x").value == 1.0

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "help": "help text", "value": 2.0}
        assert snapshot["g"]["type"] == "gauge"
        assert snapshot["h"]["bucket_counts"] == [1, 1, 1]

    def test_contains_len_reset(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert "a" in registry and len(registry) == 1
        registry.reset()
        assert "a" not in registry and len(registry) == 0

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()


class TestSolverMetrics:
    def test_compile_cache_and_convergence_counters(self):
        registry = MetricsRegistry()
        solver = HunIPUSolver(metrics=registry)
        instance = gaussian_instance(16, 50, seed=0)
        solver.solve(instance)
        solver.solve(instance)
        assert registry.counter("solver.compile_cache_misses").value == 1.0
        assert registry.counter("solver.compile_cache_hits").value == 1.0
        assert registry.counter("solver.solves").value == 2.0
        assert registry.counter("solver.augmentations").value > 0

    def test_engine_histograms_fed_with_explicit_registry(self):
        registry = MetricsRegistry()
        solver = HunIPUSolver(metrics=registry)
        solver.solve(gaussian_instance(16, 50, seed=0))
        supersteps = registry.counter("engine.supersteps").value
        assert supersteps > 0
        exchange = registry.get("engine.exchange_bytes")
        assert exchange is not None and exchange.count == supersteps
        imbalance = registry.get("engine.tile_imbalance")
        assert imbalance is not None
        assert imbalance.min >= 1.0

    def test_default_solver_skips_engine_instruments(self):
        before = default_registry().counter("engine.supersteps").value
        solver = HunIPUSolver()
        solver.solve(gaussian_instance(16, 50, seed=0))
        # Convergence counters land in the default registry, but the
        # per-superstep engine instruments stay untouched.
        assert default_registry().counter("engine.supersteps").value == before
        assert default_registry().counter("solver.solves").value > 0


class TestThreadSafety:
    """The serving layer hammers one registry from many worker threads."""

    def test_concurrent_increments_are_not_lost(self):
        import threading

        registry = MetricsRegistry()
        threads = 8
        rounds = 2000
        barrier = threading.Barrier(threads)

        def worker(index):
            barrier.wait()
            for i in range(rounds):
                # Same names from every thread: exercises the registry's
                # get-or-create race as well as the instrument mutations.
                registry.counter("stress.counter").inc()
                registry.gauge("stress.gauge").add(1.0)
                registry.histogram(
                    "stress.histogram", buckets=(0.5, 2.0)
                ).observe(1.0)

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        total = threads * rounds
        assert registry.counter("stress.counter").value == total
        assert registry.gauge("stress.gauge").value == total
        histogram = registry.histogram("stress.histogram", buckets=(0.5, 2.0))
        assert histogram.count == total
        assert histogram.sum == pytest.approx(total)
        assert histogram.bucket_counts == (0, total, total)
        # Exactly three instruments despite 8 threads racing to create them.
        assert len(registry) == 3

    def test_snapshot_during_concurrent_writes(self):
        import threading

        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                registry.counter("snap.counter").inc()
                registry.histogram("snap.histogram").observe(0.1)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                for name, document in registry.snapshot().items():
                    assert name.startswith("snap.")
                    assert isinstance(document, dict)
        finally:
            stop.set()
            thread.join()
