"""Tests for the structured event tracer and its solver integration."""

import math

import pytest

from repro.core import HunIPUSolver
from repro.data.synthetic import gaussian_instance
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class TestTracerUnit:
    def test_events_are_sequenced(self):
        tracer = Tracer()
        tracer.event("solve_start", size=4)
        tracer.superstep("step1/x", total_seconds=1.0, compute_seconds=0.5)
        tracer.event("solve_end")
        assert [event.seq for event in tracer.events] == [0, 1, 2]
        assert [event.kind for event in tracer.events] == [
            "solve_start", "superstep", "solve_end",
        ]

    def test_loop_depth_tracking(self):
        tracer = Tracer()
        tracer.loop_enter("outer")
        tracer.loop_enter("inner")
        tracer.loop_exit("inner", iterations=3)
        tracer.loop_exit("outer", iterations=1)
        assert tracer.max_loop_depth == 2
        stats = tracer.loop_stats()
        assert stats["inner"]["iterations"] == 3
        assert stats["inner"]["entries"] == 1
        assert stats["outer"]["mean_iterations"] == 1.0

    def test_loop_iters_dropped_by_default(self):
        tracer = Tracer()
        tracer.loop_enter("c")
        tracer.loop_iter("c", 1)
        tracer.loop_exit("c", 1)
        assert not tracer.events_of("loop_iter")
        keeper = Tracer(keep_loop_iters=True)
        keeper.loop_enter("c")
        keeper.loop_iter("c", 1)
        keeper.loop_exit("c", 1)
        assert len(keeper.events_of("loop_iter")) == 1

    def test_branch_stats(self):
        tracer = Tracer()
        tracer.branch("flag", "then")
        tracer.branch("flag", "else")
        tracer.branch("flag", "else")
        assert tracer.branch_stats() == {"flag": {"then": 1, "else": 2}}

    def test_step_seconds_groups_by_prefix(self):
        tracer = Tracer()
        tracer.superstep("step4/scan", total_seconds=1.0)
        tracer.superstep("step4/final", total_seconds=2.0)
        tracer.superstep("step6/update", total_seconds=4.0)
        totals = tracer.step_seconds()
        assert totals["step4"] == pytest.approx(3.0)
        assert totals["step6"] == pytest.approx(4.0)
        assert totals["step1"] == 0.0

    def test_tile_imbalance_weighted_by_compute(self):
        tracer = Tracer()
        tracer.superstep(
            "a", total_seconds=1.0, compute_seconds=3.0, imbalance=2.0
        )
        tracer.superstep(
            "b", total_seconds=1.0, compute_seconds=1.0, imbalance=1.0
        )
        aggregate = tracer.tile_imbalance()
        assert aggregate["mean"] == pytest.approx((2.0 * 3 + 1.0 * 1) / 4)
        assert aggregate["max"] == 2.0

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        # Every hook must be callable and side-effect free.
        NULL_TRACER.superstep("x", total_seconds=1.0)
        NULL_TRACER.loop_enter("c")
        NULL_TRACER.loop_iter("c", 1)
        NULL_TRACER.loop_exit("c", 1)
        NULL_TRACER.branch("c", "then")
        NULL_TRACER.event("anything")
        assert not hasattr(NULL_TRACER, "events")

    def test_tracer_is_a_null_tracer_subtype(self):
        # Engine call sites type against NullTracer; a recording tracer
        # must be substitutable.
        assert isinstance(Tracer(), NullTracer)


@pytest.fixture(scope="module")
def traced_solve():
    tracer = Tracer()
    solver = HunIPUSolver(tracer=tracer)
    result = solver.solve(gaussian_instance(24, 50, seed=3))
    return tracer, result


class TestSolverIntegration:
    def test_superstep_count_matches_profile(self, traced_solve):
        tracer, result = traced_solve
        report = result.stats["profile"]
        assert tracer.superstep_count() == report.supersteps

    def test_step_seconds_match_by_prefix(self, traced_solve):
        tracer, result = traced_solve
        report = result.stats["profile"]
        totals = tracer.step_seconds()
        for prefix in ("step1", "step2", "step3", "step4", "step5", "step6",
                       "compress"):
            assert math.isclose(
                totals[prefix], report.by_prefix(prefix), rel_tol=1e-9
            ), prefix

    def test_solve_lifecycle_events(self, traced_solve):
        tracer, result = traced_solve
        starts = tracer.events_of("solve_start")
        ends = tracer.events_of("solve_end")
        assert len(starts) == len(ends) == 1
        assert starts[0].data["size"] == 24
        assert ends[0].data["supersteps"] == result.stats["supersteps"]
        assert ends[0].data["augmentations"] == result.stats["augmentations"]

    def test_loop_stats_cover_solver_control_flow(self, traced_solve):
        tracer, _ = traced_solve
        loops = tracer.loop_stats()
        # The outer cover loop runs once; the Step-5 path-trace loop runs
        # once per augmentation, and its iteration counts are the
        # augmenting-path lengths.
        assert loops["not_done"]["entries"] == 1
        assert "inner_cond" in loops
        assert "path_active" in loops

    def test_path_lengths_match_augmentations(self, traced_solve):
        tracer, result = traced_solve
        loops = tracer.loop_stats()
        assert loops["path_active"]["entries"] == result.stats["augmentations"]

    def test_branch_outcomes_match_step_counters(self, traced_solve):
        tracer, result = traced_solve
        branches = tracer.branch_stats()
        # Inner-loop dispatch: flag_update then-branch = slack updates,
        # flag_aug then-branch = augmentations (Step 4 status outcomes).
        assert branches["flag_update"]["then"] == result.stats["slack_updates"]
        assert branches["flag_aug"]["then"] == result.stats["augmentations"]

    def test_imbalance_present_and_sane(self, traced_solve):
        tracer, _ = traced_solve
        aggregate = tracer.tile_imbalance()
        assert aggregate["mean"] >= 1.0
        assert aggregate["max"] >= aggregate["mean"]

    def test_nesting_depth_reflects_program_tree(self, traced_solve):
        tracer, _ = traced_solve
        # main loop -> inner loop -> (step5's path loops) = at least 3.
        assert tracer.max_loop_depth >= 3

    def test_disabled_tracer_records_nothing(self):
        solver = HunIPUSolver()
        assert solver.tracer is NULL_TRACER
        result = solver.solve(gaussian_instance(16, 50, seed=1))
        assert result.stats["supersteps"] > 0

    def test_summary_is_self_consistent(self, traced_solve):
        tracer, _ = traced_solve
        summary = tracer.summary()
        assert summary["supersteps"] == tracer.superstep_count()
        assert summary["events"] == len(tracer.events)
