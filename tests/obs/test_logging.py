"""Tests for the logging wiring helper."""

import io
import logging

import pytest

from repro.obs.logging_setup import (
    _FORMAT,
    CorrelationFilter,
    resolve_level,
    setup_logging,
)
from repro.obs.spans import SpanCollector, correlation_scope


class TestResolveLevel:
    def test_explicit_wins(self):
        assert resolve_level("debug", verbose=0) == logging.DEBUG
        assert resolve_level("ERROR", verbose=3) == logging.ERROR

    def test_verbosity_ladder(self):
        assert resolve_level(None, 0) == logging.WARNING
        assert resolve_level(None, 1) == logging.INFO
        assert resolve_level(None, 2) == logging.DEBUG
        assert resolve_level(None, 5) == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("chatty")


class TestSetupLogging:
    def test_idempotent_single_handler(self):
        logger = setup_logging("info")
        handlers_before = list(logger.handlers)
        logger_again = setup_logging("debug")
        assert logger_again is logger
        assert logger.handlers == handlers_before
        assert logger.level == logging.DEBUG

    def test_messages_reach_the_stream(self):
        stream = io.StringIO()
        # Fresh handler path only triggers once per process; write through
        # the configured logger and assert the level gate instead.
        logger = setup_logging("info", stream=stream)
        assert logger.isEnabledFor(logging.INFO)
        assert not logging.getLogger("repro.core.solver").isEnabledFor(
            logging.DEBUG
        )
        setup_logging("warning")


def _record(message: str = "hello") -> logging.LogRecord:
    return logging.LogRecord(
        name="repro.serve.service",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )


class TestCorrelationFilter:
    def test_default_is_dash(self):
        record = _record()
        assert CorrelationFilter().filter(record) is True
        assert record.correlation_id == "-"

    def test_correlation_scope_is_stamped(self):
        record = _record()
        with correlation_scope("req-000042"):
            CorrelationFilter().filter(record)
        assert record.correlation_id == "req-000042"

    def test_active_span_is_stamped(self):
        spans = SpanCollector()
        record = _record()
        with spans.span("request", correlation_id="req-000007"):
            CorrelationFilter().filter(record)
        assert record.correlation_id == "req-000007"

    def test_existing_stamp_is_preserved(self):
        record = _record()
        record.correlation_id = "req-custom"
        with correlation_scope("req-other"):
            CorrelationFilter().filter(record)
        assert record.correlation_id == "req-custom"

    def test_formatted_line_is_greppable(self):
        record = _record("engine fallback engaged")
        with correlation_scope("req-000042"):
            CorrelationFilter().filter(record)
        line = logging.Formatter(_FORMAT).format(record)
        assert "[req-000042]" in line
        assert "engine fallback engaged" in line

    def test_serve_log_lines_carry_the_request_id(self):
        """End-to-end: a rejected request logs with its correlation id."""
        from repro.data.synthetic import gaussian_instance
        from repro.serve import SolverService

        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler.addFilter(CorrelationFilter())
        logger = logging.getLogger("repro.serve")
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.INFO)
        try:
            service = SolverService(workers=1)
            service.close()
            ticket = service.submit(gaussian_instance(8, 10, seed=0))
            response = ticket.response(5.0)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert response.status == "rejected"
        output = stream.getvalue()
        assert f"[{response.correlation_id}]" in output
