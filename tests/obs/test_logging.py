"""Tests for the logging wiring helper."""

import io
import logging

import pytest

from repro.obs.logging_setup import resolve_level, setup_logging


class TestResolveLevel:
    def test_explicit_wins(self):
        assert resolve_level("debug", verbose=0) == logging.DEBUG
        assert resolve_level("ERROR", verbose=3) == logging.ERROR

    def test_verbosity_ladder(self):
        assert resolve_level(None, 0) == logging.WARNING
        assert resolve_level(None, 1) == logging.INFO
        assert resolve_level(None, 2) == logging.DEBUG
        assert resolve_level(None, 5) == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("chatty")


class TestSetupLogging:
    def test_idempotent_single_handler(self):
        logger = setup_logging("info")
        handlers_before = list(logger.handlers)
        logger_again = setup_logging("debug")
        assert logger_again is logger
        assert logger.handlers == handlers_before
        assert logger.level == logging.DEBUG

    def test_messages_reach_the_stream(self):
        stream = io.StringIO()
        # Fresh handler path only triggers once per process; write through
        # the configured logger and assert the level gate instead.
        logger = setup_logging("info", stream=stream)
        assert logger.isEnabledFor(logging.INFO)
        assert not logging.getLogger("repro.core.solver").isEnabledFor(
            logging.DEBUG
        )
        setup_logging("warning")
