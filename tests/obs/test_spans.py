"""Unit, concurrency-stress, and overhead tests for repro.obs.spans."""

import threading
from time import perf_counter

import pytest

from repro.obs.spans import (
    NULL_SPANS,
    SpanCollector,
    child_span,
    correlation_scope,
    current_correlation_id,
    current_span,
)


class FakeClock:
    """Deterministic monotonic clock for exact duration assertions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpanBasics:
    def test_start_end_records_duration(self):
        clock = FakeClock()
        spans = SpanCollector(clock=clock)
        span = spans.start("request", correlation_id="req-1")
        clock.advance(2.5)
        spans.end(span)
        assert span.finished
        assert span.duration_s == pytest.approx(2.5)
        assert spans.finished() == [span]

    def test_end_is_idempotent(self):
        clock = FakeClock()
        spans = SpanCollector(clock=clock)
        span = spans.start("x", correlation_id="c")
        spans.end(span)
        first_end = span.end_s
        clock.advance(1.0)
        spans.end(span, "error")
        assert span.end_s == first_end
        assert span.status == "ok"
        assert len(spans) == 1

    def test_explicit_parent_and_correlation_inheritance(self):
        spans = SpanCollector()
        root = spans.start("request", correlation_id="req-7")
        kid = spans.start("queue", parent=root)
        assert kid.parent_id == root.span_id
        assert kid.correlation_id == "req-7"

    def test_anonymous_spans_get_generated_correlation(self):
        spans = SpanCollector()
        a = spans.start("a")
        b = spans.start("b")
        assert a.correlation_id != b.correlation_id
        assert a.correlation_id.startswith("span-")

    def test_attributes_and_set_chain(self):
        spans = SpanCollector()
        span = spans.start("x", correlation_id="c", size=16).set(backend="hunipu")
        assert span.attributes == {"size": 16, "backend": "hunipu"}
        assert span.to_dict()["attributes"] == {"size": 16, "backend": "hunipu"}

    def test_root_flag_detaches_from_ambient(self):
        spans = SpanCollector()
        with spans.span("outer", correlation_id="outer-1"):
            detached = spans.start("request", correlation_id="req-1", root=True)
            nested = spans.start("nested")
            spans.end(detached)
            spans.end(nested)
        assert detached.parent_id is None
        assert nested.parent_id is not None


class TestAmbientPropagation:
    def test_span_context_sets_and_restores_current(self):
        spans = SpanCollector()
        assert current_span() is None
        with spans.span("request", correlation_id="req-1") as span:
            assert current_span() is span
            assert current_correlation_id() == "req-1"
        assert current_span() is None
        assert current_correlation_id() is None

    def test_nested_spans_build_a_tree(self):
        spans = SpanCollector()
        with spans.span("request", correlation_id="req-1") as root:
            with spans.span("execute") as execute:
                with child_span("engine.run", mode="compressed") as leaf:
                    pass
        assert execute.parent_id == root.span_id
        assert leaf.parent_id == execute.span_id
        assert leaf.correlation_id == "req-1"
        tree = spans.tree("req-1")
        assert tree["name"] == "request"
        assert tree["children"][0]["name"] == "execute"
        assert tree["children"][0]["children"][0]["name"] == "engine.run"
        assert tree["children"][0]["children"][0]["attributes"]["mode"] == (
            "compressed"
        )

    def test_exception_marks_error_and_restores_context(self):
        spans = SpanCollector()
        with pytest.raises(RuntimeError):
            with spans.span("request", correlation_id="req-1"):
                raise RuntimeError("boom")
        assert current_span() is None
        (span,) = spans.finished()
        assert span.status == "error"
        assert span.finished

    def test_activate_adopts_without_ending(self):
        spans = SpanCollector()
        span = spans.start("request", correlation_id="req-9")
        with spans.activate(span):
            assert current_span() is span
            with child_span("inner") as inner:
                pass
        assert not span.finished  # activate never closes
        assert inner.parent_id == span.span_id
        spans.end(span)

    def test_child_span_without_active_is_shared_noop(self):
        with child_span("engine.run") as a:
            with child_span("deeper") as b:
                assert a is b  # the shared null span
        assert a.set(x=1) is a
        assert a.attributes == {}

    def test_correlation_scope_without_spans(self):
        assert current_correlation_id() is None
        with correlation_scope("req-42"):
            assert current_correlation_id() == "req-42"
        assert current_correlation_id() is None

    def test_active_span_wins_over_correlation_scope(self):
        spans = SpanCollector()
        with correlation_scope("req-outer"):
            with spans.span("request", correlation_id="req-inner"):
                assert current_correlation_id() == "req-inner"
            assert current_correlation_id() == "req-outer"

    def test_thread_isolation(self):
        spans = SpanCollector()
        seen = {}

        def worker():
            seen["span"] = current_span()
            seen["correlation"] = current_correlation_id()

        with spans.span("request", correlation_id="req-1"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["span"] is None
        assert seen["correlation"] is None


class TestNullDiscipline:
    def test_null_spans_disabled_and_inert(self):
        assert NULL_SPANS.enabled is False
        span = NULL_SPANS.start("x", correlation_id="c")
        assert span.set(a=1) is span
        NULL_SPANS.end(span, "error")
        with NULL_SPANS.span("y") as inner:
            assert inner is span
        with NULL_SPANS.activate(span):
            pass
        assert current_span() is None


class TestViews:
    def test_coverage_full_tree(self):
        clock = FakeClock()
        spans = SpanCollector(clock=clock)
        root = spans.start("request", correlation_id="req-1")
        queue = spans.start("queue", parent=root)
        clock.advance(0.4)
        spans.end(queue)
        execute = spans.start("execute", parent=root)
        clock.advance(0.6)
        spans.end(execute)
        spans.end(root)
        assert spans.coverage("req-1") == pytest.approx(1.0)

    def test_coverage_partial(self):
        clock = FakeClock()
        spans = SpanCollector(clock=clock)
        root = spans.start("request", correlation_id="req-1")
        child = spans.start("queue", parent=root)
        clock.advance(0.5)
        spans.end(child)
        clock.advance(0.5)  # unaccounted second half
        spans.end(root)
        assert spans.coverage("req-1") == pytest.approx(0.5)

    def test_coverage_childless_root_and_missing(self):
        spans = SpanCollector()
        root = spans.start("request", correlation_id="req-1")
        spans.end(root)
        assert spans.coverage("req-1") == 1.0
        assert spans.coverage("req-nope") == 0.0

    def test_roots_and_by_correlation(self):
        spans = SpanCollector()
        a = spans.start("request", correlation_id="req-a")
        kid = spans.start("queue", parent=a)
        b = spans.start("request", correlation_id="req-b")
        for span in (kid, a, b):
            spans.end(span)
        assert {s.correlation_id for s in spans.roots()} == {"req-a", "req-b"}
        assert [s.name for s in spans.by_correlation("req-a")] == [
            "queue", "request"
        ]


class TestConcurrencyStress:
    def test_many_workers_one_collector(self):
        """Satellite: overlapping spans from many threads, one sink.

        Every span id must be unique, every parent edge must stay within
        its own request tree, and nothing may be lost or torn.
        """
        spans = SpanCollector()
        workers = 8
        per_worker = 50
        barrier = threading.Barrier(workers)
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                barrier.wait()
                for index in range(per_worker):
                    correlation = f"req-{worker_id}-{index}"
                    with spans.span(
                        "request", correlation_id=correlation, root=True
                    ):
                        with spans.span("queue"):
                            pass
                        with spans.span("execute"):
                            with child_span("engine.run"):
                                pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        finished = spans.finished()
        assert len(finished) == workers * per_worker * 4
        ids = [span.span_id for span in finished]
        assert len(set(ids)) == len(ids)
        by_id = {span.span_id: span for span in finished}
        for span in finished:
            assert span.finished and span.end_s >= span.start_s
            if span.parent_id is None:
                assert span.name == "request"
            else:
                parent = by_id[span.parent_id]
                assert parent.correlation_id == span.correlation_id
        for worker_id in range(workers):
            for index in range(per_worker):
                correlation = f"req-{worker_id}-{index}"
                tree = spans.tree(correlation)
                assert tree is not None
                assert [c["name"] for c in tree["children"]] == [
                    "queue", "execute"
                ]
                assert spans.coverage(correlation) <= 1.0


class TestOverheadBudget:
    def test_disabled_child_span_is_cheap(self):
        """Acceptance: disabled spans add <5% to an uninstrumented solve.

        Measured structurally instead of a brittle A/B wall-clock diff: the
        per-call cost of a no-op :func:`child_span` entry/exit (what every
        deep-layer hook costs when untraced), times a generous multiple of
        the hooks an engine-backed solve actually hits (~3 per solve), must
        sit far inside 5% of one small solve's wall time.
        """
        from repro.core.solver import HunIPUSolver
        from repro.data.synthetic import gaussian_instance

        instance = gaussian_instance(16, 100, seed=0)
        solver = HunIPUSolver()
        solver.solve(instance)  # compile outside the timed window
        started = perf_counter()
        solver.solve(instance)
        solve_seconds = perf_counter() - started

        calls = 10_000
        started = perf_counter()
        for _ in range(calls):
            with child_span("engine.run"):
                pass
        per_call = (perf_counter() - started) / calls

        hooks_per_solve = 100  # ~30x the real hook count — generous slack
        assert per_call * hooks_per_solve < 0.05 * solve_seconds, (
            f"no-op child_span costs {per_call * 1e6:.2f}us/call; "
            f"{hooks_per_solve} calls would eat >=5% of a "
            f"{solve_seconds * 1e3:.1f}ms solve"
        )
