"""Prometheus text-format exposition tests (repro.obs.metrics).

``_parse_exposition`` is a strict, regex-based text-format parser written
against the Prometheus exposition-format spec — sample-line syntax, HELP/
TYPE comments, histogram series shape — standing in for the real scraper
(no prometheus_client dependency in this environment).
"""

import math
import re

import pytest

from repro.obs.metrics import (
    LATENCY_SECONDS_BUCKETS,
    MetricsRegistry,
    metrics_to_prometheus_text,
    prometheus_name,
    snapshot_to_prometheus_text,
)

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)
_HELP_RE = re.compile(rf"^# HELP (?P<name>{_METRIC_NAME}) (?P<text>.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE (?P<name>{_METRIC_NAME}) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_exposition(text: str) -> tuple[dict, dict]:
    """Parse text-format exposition; returns (samples, types).

    ``samples`` maps sample name → list of ({labels}, value); every line
    must match the spec's grammar, or the parse fails the test.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    samples: dict[str, list[tuple[dict, float]]] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            assert _HELP_RE.match(line), f"bad HELP line: {line!r}"
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_RE.match(line)
            assert match, f"bad TYPE line: {line!r}"
            assert match["name"] not in types, f"duplicate TYPE for {match['name']}"
            types[match["name"]] = match["type"]
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"bad sample line: {line!r}"
        labels = {}
        if match["labels"]:
            for pair in match["labels"].split(","):
                label = _LABEL_RE.match(pair)
                assert label, f"bad label pair {pair!r} in {line!r}"
                labels[label["key"]] = label["value"]
        samples.setdefault(match["name"], []).append(
            (labels, _parse_value(match["value"]))
        )
    return samples, types


def _series_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.completed", "requests completed").inc(7)
    registry.gauge("serve.queue_depth", "admission queue depth").set(3)
    latency = registry.histogram(
        "serve.latency_seconds",
        "end-to-end request latency",
        buckets=LATENCY_SECONDS_BUCKETS,
    )
    for value in (0.0004, 0.003, 0.003, 0.04, 0.2, 1.7, 45.0):
        latency.observe(value)
    return registry


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("serve.latency_seconds") == "serve_latency_seconds"

    def test_illegal_chars_and_leading_digit(self):
        assert prometheus_name("a-b c") == "a_b_c"
        assert prometheus_name("2fast") == "_2fast"
        assert _SAMPLE_RE.match(prometheus_name("2fast") + " 1")


class TestExposition:
    def test_parses_under_the_format_parser(self):
        samples, types = _parse_exposition(
            metrics_to_prometheus_text(_series_registry())
        )
        assert types["serve_completed"] == "counter"
        assert types["serve_queue_depth"] == "gauge"
        assert types["serve_latency_seconds"] == "histogram"
        assert samples["serve_completed"] == [({}, 7.0)]
        assert samples["serve_queue_depth"] == [({}, 3.0)]

    def test_histogram_series_shape(self):
        samples, _ = _parse_exposition(
            metrics_to_prometheus_text(_series_registry())
        )
        buckets = samples["serve_latency_seconds_bucket"]
        # One series per bound plus the terminal +Inf bucket.
        assert len(buckets) == len(LATENCY_SECONDS_BUCKETS) + 1
        bounds = [_parse_value(labels["le"]) for labels, _ in buckets]
        assert bounds == sorted(bounds)
        assert bounds[-1] == math.inf
        counts = [value for _, value in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        # +Inf bucket == _count, and _sum matches the observations.
        (_, count_value), = samples["serve_latency_seconds_count"]
        assert counts[-1] == count_value == 7
        (_, sum_value), = samples["serve_latency_seconds_sum"]
        assert sum_value == pytest.approx(0.0004 + 0.003 + 0.003 + 0.04 + 0.2 + 1.7 + 45.0)

    def test_latency_buckets_resolve_sub_second(self):
        """Satellite 1: sub-second latencies spread across buckets instead
        of all landing below the old powers-of-4 first bound of 1.0."""
        samples, _ = _parse_exposition(
            metrics_to_prometheus_text(_series_registry())
        )
        buckets = {
            labels["le"]: value
            for labels, value in samples["serve_latency_seconds_bucket"]
        }
        assert buckets["0.0005"] == 1
        assert buckets["0.005"] == 3
        assert buckets["0.05"] == 4
        assert buckets["0.25"] == 5
        assert buckets["2.5"] == 6
        assert buckets["30"] == 6  # 45s rides the +Inf bucket
        assert buckets["+Inf"] == 7

    def test_empty_histogram_and_registry(self):
        registry = MetricsRegistry()
        registry.histogram("h", "empty", buckets=(1.0, 2.0))
        samples, _ = _parse_exposition(metrics_to_prometheus_text(registry))
        assert all(value == 0 for _, value in samples["h_bucket"])
        assert samples["h_count"] == [({}, 0.0)]
        assert snapshot_to_prometheus_text({}) == "\n"

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", "line one\nline two \\ backslash").inc()
        text = metrics_to_prometheus_text(registry)
        assert "# HELP c line one\\nline two \\\\ backslash" in text
        _parse_exposition(text)

    def test_service_prometheus_text_smoke(self):
        """The serve-layer surface: SolverService.prometheus_text parses."""
        from repro.serve import SolverService

        service = SolverService(workers=1, metrics=MetricsRegistry())
        try:
            from repro.data.synthetic import gaussian_instance

            response = service.solve(gaussian_instance(8, 10, seed=1), tier="fast")
            assert response.ok
        finally:
            service.close()
        samples, types = _parse_exposition(service.prometheus_text())
        assert types["serve_completed"] == "counter"
        assert samples["serve_completed"] == [({}, 1.0)]
        assert "serve_latency_seconds_bucket" in samples
