"""Tests for the schema-versioned JSON exporters and validators."""

import json

import numpy as np
import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.recording import RunRecord, save_bench_json
from repro.core import HunIPUSolver
from repro.data.synthetic import gaussian_instance
from repro.ipu.profiler import Profiler
from repro.ipu.spec import IPUSpec
from repro.obs import (
    MetricsRegistry,
    SchemaError,
    SpanCollector,
    Tracer,
    metrics_to_dict,
    perfetto_from_documents,
    profile_report_from_dict,
    profile_report_to_dict,
    spans_to_dict,
    to_jsonable,
    trace_to_dict,
    validate_document,
    validate_perfetto,
    write_json,
)
from repro.obs.export import tile_profile_to_dict


@pytest.fixture
def report():
    profiler = Profiler(IPUSpec.mk2())
    profiler.record_superstep("step1/a", 1000, 4096)
    profiler.record_superstep("step6/b", 2000, 0)
    profiler.record_host_io(1024)
    return profiler.report()


class TestJsonable:
    def test_numpy_coercion(self):
        value = to_jsonable(
            {"a": np.int64(3), "b": np.float32(0.5), "c": np.arange(3)}
        )
        assert value == {"a": 3, "b": 0.5, "c": [0, 1, 2]}
        json.dumps(value)  # must be encodable

    def test_fallback_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable({"x": Opaque()}) == {"x": "<opaque>"}

    def test_tuples_and_sets_become_lists(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable({3}) == [3]


class TestProfileExport:
    def test_round_trip(self, report):
        document = profile_report_to_dict(report)
        validate_document(document)
        rebuilt = profile_report_from_dict(json.loads(json.dumps(document)))
        assert rebuilt.supersteps == report.supersteps
        assert rebuilt.device_seconds == pytest.approx(report.device_seconds)
        assert rebuilt.host_io_seconds == pytest.approx(report.host_io_seconds)
        assert rebuilt.record_named("step1/a").exchange_bytes == 4096
        assert [r.name for r in rebuilt.records] == [r.name for r in report.records]

    def test_supersteps_mismatch_rejected(self, report):
        document = profile_report_to_dict(report)
        document["supersteps"] = 99
        with pytest.raises(SchemaError, match="supersteps"):
            validate_document(document)

    def test_missing_key_rejected(self, report):
        document = profile_report_to_dict(report)
        del document["records"][0]["compute_seconds"]
        with pytest.raises(SchemaError, match="compute_seconds"):
            validate_document(document)


class TestTraceExport:
    def test_trace_document_with_profile(self, report):
        tracer = Tracer()
        tracer.superstep("step1/a", total_seconds=0.1, compute_seconds=0.05)
        tracer.superstep("step6/b", total_seconds=0.2, compute_seconds=0.1)
        document = trace_to_dict(tracer, report, meta={"size": 8})
        assert validate_document(document) == "repro.trace/1"
        assert document["meta"]["size"] == 8
        json.dumps(to_jsonable(document))

    def test_superstep_count_mismatch_rejected(self, report):
        tracer = Tracer()
        tracer.superstep("step1/a", total_seconds=0.1)
        document = trace_to_dict(tracer, report)
        with pytest.raises(SchemaError, match="disagree|supersteps"):
            validate_document(document)

    def test_unknown_schema_rejected(self):
        with pytest.raises(SchemaError, match="unknown schema"):
            validate_document({"schema": "repro.trace/999"})


def _stream_document():
    """A minimal valid ``repro.stream/1`` document."""
    return {
        "schema": "repro.stream/1",
        "meta": {
            "size": 8,
            "ticks": 2,
            "drift_rows": 1,
            "seed": 0,
            "scale": "quick",
            "audit": "pass",
        },
        "ticks": [
            {
                "tick": 0,
                "mode": "cold",
                "changed_rows": 0,
                "cold_supersteps": 100,
                "warm_supersteps": 100,
                "saved": 0,
                "costs_equal": True,
                "scipy_optimal": True,
            },
            {
                "tick": 1,
                "mode": "warm",
                "changed_rows": 1,
                "cold_supersteps": 100,
                "warm_supersteps": 40,
                "saved": 60,
                "costs_equal": True,
                "scipy_optimal": True,
            },
        ],
        "totals": {
            "cold_supersteps": 200,
            "warm_supersteps": 140,
            "supersteps_saved": 60,
            "saved_fraction": 0.3,
        },
    }


class TestStreamExport:
    def test_valid_document(self):
        assert validate_document(_stream_document()) == "repro.stream/1"

    def test_cost_mismatch_rejected(self):
        document = _stream_document()
        document["ticks"][1]["costs_equal"] = False
        with pytest.raises(SchemaError, match="bit-identical"):
            validate_document(document)

    def test_oracle_mismatch_rejected(self):
        document = _stream_document()
        document["ticks"][1]["scipy_optimal"] = False
        with pytest.raises(SchemaError, match="scipy"):
            validate_document(document)

    def test_inconsistent_totals_rejected(self):
        document = _stream_document()
        document["totals"]["cold_supersteps"] = 999
        with pytest.raises(SchemaError, match="totals"):
            validate_document(document)

    def test_inconsistent_saved_rejected(self):
        document = _stream_document()
        document["ticks"][1]["saved"] = 61
        with pytest.raises(SchemaError, match="saved"):
            validate_document(document)

    def test_inconsistent_saved_fraction_rejected(self):
        document = _stream_document()
        document["totals"]["saved_fraction"] = 0.9
        with pytest.raises(SchemaError, match="saved_fraction"):
            validate_document(document)

    def test_empty_ticks_rejected(self):
        document = _stream_document()
        document["ticks"] = []
        with pytest.raises(SchemaError, match="non-empty"):
            validate_document(document)

    def test_bad_mode_rejected(self):
        document = _stream_document()
        document["ticks"][0]["mode"] = "tepid"
        with pytest.raises(SchemaError, match="mode"):
            validate_document(document)


class TestMetricsExport:
    def test_snapshot_document(self):
        registry = MetricsRegistry()
        registry.counter("solver.solves").inc()
        registry.histogram("h", buckets=(1, 2)).observe(1.5)
        document = metrics_to_dict(registry)
        assert validate_document(document) == "repro.metrics/1"
        json.dumps(document)

    def test_bad_instrument_type_rejected(self):
        document = {"schema": "repro.metrics/1", "metrics": {"x": {"type": "meter"}}}
        with pytest.raises(SchemaError, match="meter"):
            validate_document(document)


class TestBenchExport:
    def _result(self):
        records = (
            RunRecord(
                "table2",
                "hunipu",
                {"n": 32, "k": 100},
                1e-3,
                0.5,
                extra={"supersteps": np.int64(808)},
            ),
        )
        return ExperimentResult("table2", "quick", records, ("table text",))

    def test_save_bench_json(self, tmp_path):
        path = save_bench_json(self._result(), tmp_path)
        assert path == tmp_path / "BENCH_table2.json"
        document = json.loads(path.read_text())
        assert validate_document(document) == "repro.bench-run/1"
        assert document["records"][0]["extra"]["supersteps"] == 808
        assert document["environment"]["python"]

    def test_write_json_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.json"
        write_json(target, {"schema": "x"})
        assert json.loads(target.read_text()) == {"schema": "x"}


class TestEndToEndDocuments:
    def test_real_solve_trace_validates(self, tmp_path):
        tracer = Tracer()
        solver = HunIPUSolver(tracer=tracer)
        result = solver.solve(gaussian_instance(16, 50, seed=2))
        document = trace_to_dict(tracer, result.stats["profile"])
        path = write_json(tmp_path / "trace.json", document)
        validate_document(json.loads(path.read_text()))


def _spans_fixture() -> SpanCollector:
    spans = SpanCollector()
    with spans.span("request", correlation_id="req-000001", root=True):
        with spans.span("queue"):
            pass
        with spans.span("execute"):
            with spans.span("engine.run", mode="compressed"):
                pass
    return spans


class TestSpansExport:
    def test_document_validates(self):
        document = spans_to_dict(_spans_fixture(), meta={"seed": 1})
        assert validate_document(document) == "repro.spans/1"
        assert document["meta"]["seed"] == 1
        assert document["meta"]["unfinished"] == 0
        assert len(document["spans"]) == 4
        json.dumps(to_jsonable(document))

    def test_unfinished_spans_are_omitted_but_counted(self):
        spans = SpanCollector()
        spans.start("request", correlation_id="req-1")  # never ended
        done = spans.start("other", correlation_id="req-2")
        spans.end(done)
        document = spans_to_dict(spans)
        assert [s["correlation_id"] for s in document["spans"]] == ["req-2"]
        assert document["meta"]["unfinished"] == 1

    def test_bad_status_rejected(self):
        document = spans_to_dict(_spans_fixture())
        document["spans"][0]["status"] = "meh"
        with pytest.raises(SchemaError, match="unknown status"):
            validate_document(document)

    def test_missing_parent_rejected(self):
        document = spans_to_dict(_spans_fixture())
        document["spans"][-1]["parent_id"] = 9999
        with pytest.raises(SchemaError, match="not in document"):
            validate_document(document)

    def test_cross_correlation_parent_rejected(self):
        document = spans_to_dict(_spans_fixture())
        document["spans"][0]["correlation_id"] = "req-other"
        with pytest.raises(SchemaError, match="correlation id"):
            validate_document(document)

    def test_end_before_start_rejected(self):
        document = spans_to_dict(_spans_fixture())
        document["spans"][0]["end_s"] = document["spans"][0]["start_s"] - 1.0
        with pytest.raises(SchemaError, match="before it starts"):
            validate_document(document)

    def test_duplicate_span_id_rejected(self):
        document = spans_to_dict(_spans_fixture())
        document["spans"][1]["span_id"] = document["spans"][0]["span_id"]
        with pytest.raises(SchemaError, match="duplicate span id"):
            validate_document(document)


class TestPerfettoExport:
    def _trace_document(self, report):
        tracer = Tracer()
        tracer.superstep("step1/a", total_seconds=0.1, compute_seconds=0.05)
        tracer.superstep("step6/b", total_seconds=0.2, compute_seconds=0.1)
        return trace_to_dict(tracer, report)

    def test_requires_at_least_one_document(self):
        with pytest.raises(SchemaError, match="spans and/or trace"):
            perfetto_from_documents()

    def test_spans_only(self):
        perfetto = perfetto_from_documents(
            spans_document=spans_to_dict(_spans_fixture())
        )
        validate_perfetto(perfetto)
        slices = [e for e in perfetto["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 4
        assert {e["pid"] for e in slices} == {1}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)
        request = next(e for e in slices if e["name"] == "request")
        assert request["args"]["correlation_id"] == "req-000001"
        lanes = [
            e
            for e in perfetto["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert lanes[0]["args"]["name"] == "req-000001"

    def test_trace_only(self, report):
        perfetto = perfetto_from_documents(
            trace_document=self._trace_document(report)
        )
        validate_perfetto(perfetto)
        slices = [e for e in perfetto["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in slices] == ["step1/a", "step6/b"]
        # Supersteps carry modeled charges: back-to-back slices.
        assert slices[0]["ts"] == 0.0
        assert slices[1]["ts"] == pytest.approx(slices[0]["dur"])

    def test_merged_engine_lane_is_offset_to_engine_run(self, report):
        spans_document = spans_to_dict(_spans_fixture())
        engine_span = next(
            s for s in spans_document["spans"] if s["name"] == "engine.run"
        )
        base = min(s["start_s"] for s in spans_document["spans"])
        perfetto = perfetto_from_documents(
            spans_document=spans_document,
            trace_document=self._trace_document(report),
        )
        validate_perfetto(perfetto)
        superstep = next(
            e
            for e in perfetto["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 2
        )
        assert superstep["ts"] == pytest.approx(
            (engine_span["start_s"] - base) * 1e6
        )

    def test_validate_perfetto_failures(self):
        with pytest.raises(SchemaError, match="traceEvents"):
            validate_perfetto({"events": []})
        with pytest.raises(SchemaError, match="expected a list"):
            validate_perfetto({"traceEvents": {}})
        with pytest.raises(SchemaError, match="negative duration"):
            validate_perfetto(
                {
                    "traceEvents": [
                        {
                            "name": "x",
                            "ph": "X",
                            "ts": 0.0,
                            "dur": -1.0,
                            "pid": 1,
                            "tid": 1,
                        }
                    ]
                }
            )


def _deep_report(size=12, seed=4):
    solver = HunIPUSolver(profile_tiles=True)
    return solver.solve(gaussian_instance(size, 100, seed=seed)).stats["profile"]


class TestTileProfileExport:
    def test_valid_document_from_real_solve(self):
        report = _deep_report()
        document = tile_profile_to_dict(report.tiles, meta={"size": 12})
        assert validate_document(document) == "repro.tile-profile/1"
        assert document["meta"]["size"] == 12
        assert document["tiles_used"] == len(document["tiles"])
        json.dumps(to_jsonable(document))

    def test_heatmap_included_on_request(self):
        report = _deep_report()
        document = tile_profile_to_dict(report.tiles, include_heatmap=True)
        validate_document(document)
        grid = document["heatmap"]
        assert grid["width"] * grid["rows"] >= document["total_tiles"]
        flat = [cell for row in grid["cycles"] for cell in row]
        assert sum(flat) == pytest.approx(document["vertex_cycles"])

    def test_series_truncation_is_recorded_not_silent(self):
        report = _deep_report()
        document = tile_profile_to_dict(report.tiles, max_series=3)
        assert len(document["series"]) == 3
        assert document["series_truncated"] == len(report.tiles.series) - 3
        validate_document(document)  # still valid with the marker

    def test_cycle_sum_mismatch_rejected(self):
        document = tile_profile_to_dict(_deep_report().tiles)
        document["tiles"][0]["cycles"] += 1.0
        with pytest.raises(SchemaError, match="cycles"):
            validate_document(document)

    def test_per_tensor_attribution_must_sum_exactly(self):
        document = tile_profile_to_dict(_deep_report().tiles)
        target = next(
            s for s in document["compute_sets"] if s["exchange_by_tensor"]
        )
        tensor = next(iter(target["exchange_by_tensor"]))
        target["exchange_by_tensor"][tensor] += 1
        with pytest.raises(SchemaError, match="exchange"):
            validate_document(document)

    def test_tiles_used_mismatch_rejected(self):
        document = tile_profile_to_dict(_deep_report().tiles)
        document["tiles_used"] += 1
        with pytest.raises(SchemaError, match="tiles"):
            validate_document(document)


class TestPerfDocument:
    def _document(self):
        return {
            "schema": "repro.perf/1",
            "meta": {},
            "runs": [
                {
                    "benchmark": "solve/n16",
                    "params": {"n": 16},
                    "metrics": {"wall_seconds": 0.01, "supersteps": 200},
                    "context": {
                        "git_rev": "abc1234",
                        "timestamp": "2026-08-08T00:00:00+00:00",
                        "scale": "quick",
                    },
                }
            ],
        }

    def test_valid_document(self):
        assert validate_document(self._document()) == "repro.perf/1"

    def test_empty_runs_is_valid(self):
        document = self._document()
        document["runs"] = []
        validate_document(document)

    def test_missing_context_key_rejected(self):
        document = self._document()
        del document["runs"][0]["context"]["git_rev"]
        with pytest.raises(SchemaError, match="git_rev"):
            validate_document(document)

    def test_non_numeric_metric_rejected(self):
        document = self._document()
        document["runs"][0]["metrics"]["wall_seconds"] = "fast"
        with pytest.raises(SchemaError, match="expected a number"):
            validate_document(document)

    def test_empty_metrics_rejected(self):
        document = self._document()
        document["runs"][0]["metrics"] = {}
        with pytest.raises(SchemaError, match="metric"):
            validate_document(document)


class TestPerfettoTileLane:
    def test_tile_document_alone(self):
        report = _deep_report()
        tile_document = tile_profile_to_dict(report.tiles)
        perfetto = perfetto_from_documents(tile_document=tile_document)
        validate_perfetto(perfetto)
        slices = [e for e in perfetto["traceEvents"] if e["ph"] == "X"]
        compute = [s for s in tile_document["series"] if s["straggler_tile"] >= 0]
        assert len(slices) == len(compute)
        assert all(e["tid"] == 2 for e in slices)
        assert all(e["name"].startswith("tile ") for e in slices)
        counters = [e for e in perfetto["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == len(compute)
        assert all("max_over_mean" in e["args"] for e in counters)
        lane_names = [
            e["args"]["name"]
            for e in perfetto["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "straggler tiles" in lane_names

    def test_tile_lane_aligns_with_superstep_lane(self):
        # Both lanes advance by the same per-superstep total_seconds, so
        # the tile slices must start inside the run's modeled window and
        # the final cursor must land on device_seconds.
        report = _deep_report()
        tracer = Tracer()
        for sample in report.tiles.series:
            tracer.superstep(
                sample.name,
                total_seconds=sample.total_seconds,
                compute_seconds=sample.compute_seconds,
            )
        perfetto = perfetto_from_documents(
            trace_document=trace_to_dict(tracer, report),
            tile_document=tile_profile_to_dict(report.tiles),
        )
        validate_perfetto(perfetto)
        events = perfetto["traceEvents"]
        superstep_ts = [e["ts"] for e in events if e["ph"] == "X" and e["tid"] == 1]
        tile_ts = [e["ts"] for e in events if e["ph"] == "X" and e["tid"] == 2]
        # Every tile slice starts exactly when some superstep slice starts.
        starts = {round(ts, 6) for ts in superstep_ts}
        assert all(round(ts, 6) in starts for ts in tile_ts)


class TestGoldenTraceSchema:
    def _document(self):
        return {
            "schema": "repro.golden-trace/1",
            "instance": {"size": 16, "seed": 7},
            "total_cost": 12.5,
            "supersteps": 42,
            "augmentations": 16,
            "loops": {"phase1": 3},
            "branches": {"taken": 5},
        }

    def test_valid_document(self):
        assert validate_document(self._document()) == "repro.golden-trace/1"

    def test_nonpositive_supersteps_rejected(self):
        document = self._document()
        document["supersteps"] = 0
        with pytest.raises(SchemaError, match="positive"):
            validate_document(document)


def _multi_document():
    """A minimal valid ``repro.multi/1`` document."""
    def row(ipus, size, inter_bytes, inter_syncs):
        return {
            "ipus": ipus,
            "size": size,
            "supersteps": 100 * size,
            "device_seconds": 1e-3 * size,
            "compute_seconds": 4e-4 * size,
            "sync_seconds": 3e-4 * size,
            "exchange_seconds": 3e-4 * size,
            "inter_ipu_bytes": inter_bytes,
            "inter_ipu_syncs": inter_syncs,
            "inter_overhead_seconds": 1e-6 * inter_syncs,
            "optimal": True,
        }

    return {
        "schema": "repro.multi/1",
        "meta": {"scale": "quick", "chip_tiles": 8, "ipus": [1, 2], "sizes": [16, 32]},
        "rows": [
            row(1, 16, 0, 0),
            row(1, 32, 0, 0),
            row(2, 16, 4096, 900),
            row(2, 32, 16384, 3600),
        ],
        "crossover": {"2": 32},
    }


class TestMultiExport:
    def test_valid_document(self):
        assert validate_document(_multi_document()) == "repro.multi/1"

    def test_null_crossover_accepted(self):
        document = _multi_document()
        document["crossover"] = {"2": None}
        validate_document(document)

    def test_missing_row_key_rejected(self):
        document = _multi_document()
        del document["rows"][0]["inter_overhead_seconds"]
        with pytest.raises(SchemaError, match="inter_overhead_seconds"):
            validate_document(document)

    def test_suboptimal_row_rejected(self):
        document = _multi_document()
        document["rows"][3]["optimal"] = False
        with pytest.raises(SchemaError, match="oracle"):
            validate_document(document)

    def test_single_ipu_cross_chip_traffic_rejected(self):
        document = _multi_document()
        document["rows"][0]["inter_ipu_bytes"] = 64
        with pytest.raises(SchemaError, match="cross-chip"):
            validate_document(document)

    def test_unsorted_sizes_rejected(self):
        document = _multi_document()
        document["rows"][0], document["rows"][1] = (
            document["rows"][1],
            document["rows"][0],
        )
        with pytest.raises(SchemaError, match="increasing"):
            validate_document(document)

    def test_crossover_for_unknown_group_rejected(self):
        document = _multi_document()
        document["crossover"]["4"] = 16
        with pytest.raises(SchemaError, match="no rows"):
            validate_document(document)

    def test_crossover_size_not_in_rows_rejected(self):
        document = _multi_document()
        document["crossover"]["2"] = 48
        with pytest.raises(SchemaError, match="not among"):
            validate_document(document)


class TestPerfettoIPULanes:
    def _multi_trace_document(self):
        """Trace a real 2-chip solve so supersteps carry ipus/inter bytes."""
        import numpy as np

        from repro.core.solver import HunIPUSolver
        from repro.ipu.cluster import ClusterSpec
        from repro.lap.problem import LAPInstance

        tracer = Tracer()
        solver = HunIPUSolver(
            spec=ClusterSpec.toy(num_tiles=2, num_ipus=2).system(),
            tracer=tracer,
        )
        rng = np.random.default_rng(2)
        result = solver.solve(LAPInstance(rng.uniform(1, 30, (8, 8))))
        return trace_to_dict(tracer, result.stats["profile"])

    def test_one_lane_per_ipu(self):
        perfetto = perfetto_from_documents(
            trace_document=self._multi_trace_document()
        )
        validate_perfetto(perfetto)
        events = perfetto["traceEvents"]
        lane_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"IPU 0", "IPU 1"} <= lane_names
        # The mirrored slices attribute each superstep to its chips.
        ipu_slices = [
            e for e in events if e["ph"] == "X" and "ipu" in e.get("args", {})
        ]
        assert {e["args"]["ipu"] for e in ipu_slices} == {0, 1}

    def test_inter_ipu_byte_counter_emitted_and_closed(self):
        perfetto = perfetto_from_documents(
            trace_document=self._multi_trace_document()
        )
        counters = [
            e
            for e in perfetto["traceEvents"]
            if e["ph"] == "C" and e["name"] == "inter-IPU exchange bytes"
        ]
        assert counters
        assert any(e["args"]["bytes"] > 0 for e in counters)
        assert counters[-1]["args"]["bytes"] == 0  # series closed at zero

    def test_single_ipu_trace_has_no_lanes_or_counter(self, report):
        tracer = Tracer()
        tracer.superstep("step1/a", total_seconds=0.1, compute_seconds=0.05)
        tracer.superstep("step6/b", total_seconds=0.2, compute_seconds=0.1)
        perfetto = perfetto_from_documents(
            trace_document=trace_to_dict(tracer, report)
        )
        events = perfetto["traceEvents"]
        assert not any(
            e["ph"] == "M" and e["args"].get("name", "").startswith("IPU ")
            for e in events
            if e["name"] == "thread_name"
        )
        assert not any(e["ph"] == "C" for e in events)
