"""Golden-trace regression: one solved instance, compared bit-for-bit.

The solver is deterministic — same instance, same spec, same dtype means
the same supersteps, the same Step-4 branch outcomes, the same augmenting
paths, the same cost.  This test re-solves a committed instance and
compares the full control-flow fingerprint against
``tests/golden/golden_trace.json`` with **no tolerances**; any drift in
the algorithm's iteration structure fails loudly and has to be a
deliberate, reviewed change (regenerate with
``python -m tests.test_golden_trace``).
"""

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_trace.json"


def current_fingerprint() -> dict:
    """Solve the pinned instance and extract the comparable fields."""
    from repro.core.solver import HunIPUSolver
    from repro.data.synthetic import gaussian_instance
    from repro.obs.trace import Tracer

    from repro.obs.export import GOLDEN_SCHEMA

    instance = gaussian_instance(16, 10, seed=42)
    tracer = Tracer()
    solver = HunIPUSolver(tracer=tracer)
    result = solver.solve(instance)
    return {
        "schema": GOLDEN_SCHEMA,
        "instance": {"kind": "gaussian", "size": 16, "k": 10, "seed": 42},
        "total_cost": result.total_cost,
        "supersteps": result.stats["supersteps"],
        "augmentations": result.stats["augmentations"],
        "slack_updates": result.stats["slack_updates"],
        "primes": result.stats["primes"],
        "loops": tracer.loop_stats(),
        "branches": tracer.branch_stats(),
    }


def test_solver_trace_matches_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    # Round-trip through JSON so float representation matches the file's.
    current = json.loads(json.dumps(current_fingerprint()))
    assert current == golden


def test_golden_passes_schema_validation():
    """The fixture is schema-stamped so CI's schema lint covers it."""
    from repro.obs.export import GOLDEN_SCHEMA, validate_document

    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["schema"] == GOLDEN_SCHEMA
    validate_document(golden)


def test_golden_covers_the_interesting_structure():
    """The committed fixture must actually pin control flow, not a stub."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["supersteps"] > 0
    assert golden["augmentations"] == golden["instance"]["size"] or (
        golden["augmentations"] > 0
    )
    # Augmenting-path lengths live in the path_active loop statistics.
    assert "path_active" in golden["loops"]
    assert golden["loops"]["path_active"]["max_iterations"] >= 1
    # Step 4's branch outcomes (prime-vs-augment) are pinned too.
    assert "flag_update" in golden["branches"] or "flag_aug" in golden["branches"]


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(current_fingerprint(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
