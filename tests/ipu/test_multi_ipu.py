"""Tests for multi-IPU systems (§III: the exchange fabric spans chips)."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.core.solver import HunIPUSolver
from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import VecReduce
from repro.ipu.programs import Copy, Execute
from repro.ipu.spec import IPUSpec
from repro.lap.problem import LAPInstance


class TestSpec:
    def test_total_tiles_scales_with_chips(self):
        spec = IPUSpec.m2000(num_ipus=4)
        assert spec.num_tiles == 1472
        assert spec.total_tiles == 4 * 1472
        assert spec.total_threads == 4 * 8832

    def test_ipu_of(self):
        spec = IPUSpec(num_tiles=10, num_ipus=3)
        assert spec.ipu_of(0) == 0
        assert spec.ipu_of(9) == 0
        assert spec.ipu_of(10) == 1
        assert spec.ipu_of(29) == 2

    def test_ipu_of_range_checked(self):
        spec = IPUSpec(num_tiles=10, num_ipus=2)
        with pytest.raises(ValueError):
            spec.ipu_of(20)

    def test_rejects_zero_ipus(self):
        with pytest.raises(ValueError):
            IPUSpec(num_ipus=0)

    def test_inter_ipu_exchange_slower(self):
        spec = IPUSpec.mk2()
        on_chip = spec.exchange_seconds(1_000_000)
        cross_chip = spec.exchange_seconds(0, inter_ipu_bytes=1_000_000)
        assert cross_chip > on_chip

    def test_exchange_overlaps_on_and_cross_chip(self):
        spec = IPUSpec.mk2()
        both = spec.exchange_seconds(1_000_000, inter_ipu_bytes=1_000_000)
        cross_only = spec.exchange_seconds(0, inter_ipu_bytes=1_000_000)
        assert both == pytest.approx(cross_only)  # slower transfer dominates


class TestExchangeSplit:
    def _two_chip_copy(self):
        spec = IPUSpec.toy(num_tiles=2, num_ipus=2)  # tiles 0,1 | 2,3
        graph = ComputeGraph(spec)
        src = graph.add_tensor(
            "src", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        dst = graph.add_tensor(
            "dst", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=2)
        )
        return spec, graph, src, dst

    def test_copy_split_counts_cross_chip_bytes(self):
        spec, graph, src, dst = self._two_chip_copy()
        copy = Copy(src, dst)
        total, inter = copy.exchange_bytes_split(spec.num_tiles)
        assert total == 16
        assert inter == 16

    def test_same_chip_copy_has_no_inter_bytes(self):
        spec = IPUSpec.toy(num_tiles=2, num_ipus=2)
        graph = ComputeGraph(spec)
        src = graph.add_tensor(
            "src", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        dst = graph.add_tensor(
            "dst", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        total, inter = Copy(src, dst).exchange_bytes_split(spec.num_tiles)
        assert total == 16
        assert inter == 0

    def test_vertex_split(self):
        spec = IPUSpec.toy(num_tiles=2, num_ipus=2)
        graph = ComputeGraph(spec)
        data = graph.add_tensor(
            "data",
            (4,),
            np.int32,
            # Half on tile 1 (chip 0), half on tile 2 (chip 1).
            mapping=TileMapping.linear_segments(4, 2, [1, 2]),
        )
        out = graph.add_tensor(
            "out", (1,), np.int32, mapping=TileMapping.single_tile(1, tile=0)
        )
        compute_set = graph.add_compute_set("reduce")
        vertex = compute_set.add_vertex(
            VecReduce("sum"),
            0,
            {"data": ComputeGraph.full(data), "out": ComputeGraph.full(out)},
        )
        total, inter = vertex.exchange_bytes_split(spec.num_tiles)
        assert total == 16  # both halves are remote to tile 0
        assert inter == 8  # only the tile-2 half crosses chips

    def test_profiler_reports_inter_bytes(self):
        spec, graph, src, dst = self._two_chip_copy()
        report = Engine(graph, Copy(src, dst)).run()
        assert report.inter_ipu_bytes == 16
        assert report.exchange_bytes == 16


class TestMultiIPUSolver:
    def test_solver_correct_across_chips(self, rng):
        """HunIPU spread over two chips still reaches the optimum."""
        spec = IPUSpec.toy(num_tiles=3, num_ipus=2)  # 6 tiles over 2 chips
        solver = HunIPUSolver(spec=spec)
        costs = rng.uniform(1, 60, (12, 12))
        result = solver.solve(LAPInstance(costs))
        rows, cols = linear_sum_assignment(costs)
        assert result.total_cost == pytest.approx(
            float(costs[rows, cols].sum()), abs=1e-7
        )
        # Rows actually landed on both chips.
        assert solver.compiled_for(12).plan.num_row_tiles == 6

    def test_cross_chip_traffic_charged(self, rng):
        spec = IPUSpec.toy(num_tiles=3, num_ipus=2)
        solver = HunIPUSolver(spec=spec)
        costs = rng.uniform(1, 60, (12, 12))
        result = solver.solve(LAPInstance(costs))
        profile = result.stats["profile"]
        assert profile.inter_ipu_bytes > 0

    def test_two_chips_slower_than_one_at_same_parallelism(self, rng):
        """Same tile count, but half the tiles across IPU-Links: the
        broadcast-heavy steps pay the slower fabric."""
        costs = rng.uniform(1, 120, (24, 24))
        one_chip = HunIPUSolver(spec=IPUSpec.toy(num_tiles=6, num_ipus=1))
        two_chips = HunIPUSolver(spec=IPUSpec.toy(num_tiles=3, num_ipus=2))
        result_one = one_chip.solve(LAPInstance(costs))
        result_two = two_chips.solve(LAPInstance(costs))
        assert np.array_equal(result_one.assignment, result_two.assignment)
        assert result_two.device_time_s > result_one.device_time_s

    def test_multi_ipu_extends_capacity(self):
        """A size that busts one toy chip's memory compiles on four."""
        small = IPUSpec(num_tiles=4, tile_memory_bytes=8 * 1024)
        large = IPUSpec(num_tiles=4, tile_memory_bytes=8 * 1024, num_ipus=4)
        n = 64  # slack+compress = 48 KiB: 12 KiB/tile on 4 tiles, 3 on 16
        from repro.errors import TileMemoryError

        with pytest.raises(TileMemoryError):
            HunIPUSolver(spec=small).compiled_for(n)
        HunIPUSolver(spec=large).compiled_for(n)  # fits across 16 tiles
