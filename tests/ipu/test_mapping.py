"""Tests for tile mappings (interval covers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.ipu.mapping import Interval, TileMapping


class TestInterval:
    def test_length(self):
        assert Interval(0, 3, 10).length == 7

    def test_rejects_negative_tile(self):
        with pytest.raises(MappingError):
            Interval(-1, 0, 1)

    def test_rejects_empty_interval(self):
        with pytest.raises(MappingError):
            Interval(0, 5, 5)


class TestExactCover:
    def test_gap_rejected(self):
        with pytest.raises(MappingError, match="gap"):
            TileMapping(10, (Interval(0, 0, 4), Interval(1, 5, 10)))

    def test_overlap_rejected(self):
        with pytest.raises(MappingError, match="gap or overlap"):
            TileMapping(10, (Interval(0, 0, 6), Interval(1, 4, 10)))

    def test_short_cover_rejected(self):
        with pytest.raises(MappingError, match="covers"):
            TileMapping(10, (Interval(0, 0, 4),))

    def test_empty_tensor_rejected(self):
        with pytest.raises(MappingError):
            TileMapping(0, ())

    def test_intervals_sorted(self):
        mapping = TileMapping(4, (Interval(1, 2, 4), Interval(0, 0, 2)))
        assert mapping.intervals[0].start == 0


class TestRowBlocks:
    def test_even_split(self):
        mapping = TileMapping.row_blocks((8, 4), range(4))
        assert len(mapping) == 4
        assert all(iv.length == 8 for iv in mapping.intervals)

    def test_uneven_split_front_loads_extra(self):
        mapping = TileMapping.row_blocks((5, 2), range(2))
        assert mapping.intervals[0].length == 6  # 3 rows
        assert mapping.intervals[1].length == 4  # 2 rows

    def test_more_tiles_than_rows(self):
        mapping = TileMapping.row_blocks((2, 3), range(10))
        assert len(mapping.tiles_used()) == 2

    def test_rejects_empty_tile_list(self):
        with pytest.raises(MappingError):
            TileMapping.row_blocks((4, 4), [])

    def test_rejects_bad_shape(self):
        with pytest.raises(MappingError):
            TileMapping.row_blocks((0, 4), range(2))

    @settings(max_examples=40, deadline=None)
    @given(rows=st.integers(1, 50), cols=st.integers(1, 20), tiles=st.integers(1, 16))
    def test_always_exact_cover_and_balanced(self, rows, cols, tiles):
        mapping = TileMapping.row_blocks((rows, cols), range(tiles))
        assert mapping.size == rows * cols
        lengths = [iv.length for iv in mapping.intervals]
        assert sum(lengths) == rows * cols
        # Balanced within one row of each other.
        assert max(lengths) - min(lengths) <= cols


class TestLinearSegments:
    def test_segments_of_32(self):
        mapping = TileMapping.linear_segments(100, 32, range(8))
        assert [iv.length for iv in mapping.intervals] == [32, 32, 32, 4]

    def test_round_robin_wraps(self):
        mapping = TileMapping.linear_segments(8, 2, [5, 6])
        assert [iv.tile for iv in mapping.intervals] == [5, 6, 5, 6]

    def test_rejects_zero_segment(self):
        with pytest.raises(MappingError):
            TileMapping.linear_segments(8, 0, [0])


class TestPerElement:
    def test_one_element_per_tile(self):
        mapping = TileMapping.per_element([3, 1, 4])
        assert mapping.size == 3
        assert mapping.tile_of(0) == 3
        assert mapping.tile_of(2) == 4

    def test_rejects_empty(self):
        with pytest.raises(MappingError):
            TileMapping.per_element([])


class TestGridBlocks:
    def test_2d_grid_interval_structure(self):
        mapping = TileMapping.grid_blocks((4, 4), (2, 2), range(4))
        assert mapping.size == 16
        # Each row is split across two tiles -> 8 intervals of length 2.
        assert len(mapping) == 8
        assert all(iv.length == 2 for iv in mapping.intervals)

    def test_rejects_grid_finer_than_matrix(self):
        with pytest.raises(MappingError):
            TileMapping.grid_blocks((2, 2), (3, 1), range(3))

    def test_rejects_too_few_tiles(self):
        with pytest.raises(MappingError):
            TileMapping.grid_blocks((4, 4), (2, 2), range(3))


class TestQueries:
    def test_bytes_per_tile(self):
        mapping = TileMapping.row_blocks((4, 2), range(2))
        assert mapping.bytes_per_tile(4) == {0: 16, 1: 16}

    def test_tile_of_out_of_range(self):
        mapping = TileMapping.single_tile(4)
        with pytest.raises(MappingError):
            mapping.tile_of(4)

    def test_intervals_on_tile(self):
        mapping = TileMapping.linear_segments(8, 2, [0, 1])
        assert len(mapping.intervals_on_tile(0)) == 2

    def test_uniform_blocks_detected(self):
        mapping = TileMapping.row_blocks((8, 4), range(4))
        uniform = mapping.as_uniform_blocks()
        assert uniform == (8, (0, 1, 2, 3))

    def test_non_uniform_blocks_rejected(self):
        mapping = TileMapping.row_blocks((5, 2), range(2))
        assert mapping.as_uniform_blocks() is None

    def test_repeated_tile_not_uniform(self):
        mapping = TileMapping.linear_segments(8, 2, [0, 1])
        assert mapping.as_uniform_blocks() is None

    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(1, 200),
        segment=st.integers(1, 50),
        tiles=st.integers(1, 8),
    )
    def test_tile_of_agrees_with_intervals(self, size, segment, tiles):
        mapping = TileMapping.linear_segments(size, segment, range(tiles))
        probe = np.random.default_rng(0).integers(0, size, 5)
        for index in probe:
            owner = mapping.tile_of(int(index))
            interval = next(
                iv for iv in mapping.intervals if iv.start <= index < iv.stop
            )
            assert owner == interval.tile
