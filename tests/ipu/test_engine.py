"""Tests for the BSP engine: semantics, costs, and mode equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import Interval, TileMapping
from repro.ipu.oplib import (
    AddToScalar,
    Fill,
    ScalarCompare,
    SortRowsDescending,
    WriteScalar,
)
from repro.ipu.programs import (
    Copy,
    Execute,
    If,
    Nop,
    Repeat,
    RepeatWhileTrue,
    Sequence,
)
from repro.ipu.spec import IPUSpec


def _counter_graph(spec):
    """Graph with a counter and compute sets to increment/compare it."""
    graph = ComputeGraph(spec)
    counter = graph.add_scalar("counter")
    flag = graph.add_scalar("flag")
    inc = graph.add_compute_set("inc")
    inc.add_vertex(
        AddToScalar(), 0, {"out": ComputeGraph.full(counter)}, params={"value": 1}
    )
    check = graph.add_compute_set("check")
    check.add_vertex(
        ScalarCompare("lt", 5),
        0,
        {"a": ComputeGraph.full(counter), "flag": ComputeGraph.full(flag)},
    )
    return graph, counter, flag, inc, check


class TestControlFlow:
    def test_repeat_runs_fixed_count(self, toy_spec):
        graph, counter, _, inc, _ = _counter_graph(toy_spec)
        engine = Engine(graph, Repeat(7, Execute(inc)))
        engine.run()
        assert counter.read_host()[0] == 7

    def test_repeat_zero_runs_nothing(self, toy_spec):
        graph, counter, _, inc, _ = _counter_graph(toy_spec)
        engine = Engine(graph, Repeat(0, Execute(inc)))
        engine.run()
        assert counter.read_host()[0] == 0

    def test_while_loop_terminates_on_condition(self, toy_spec):
        graph, counter, flag, inc, check = _counter_graph(toy_spec)
        body = Sequence(Execute(inc), Execute(check))
        program = Sequence(Execute(check), RepeatWhileTrue(flag, body))
        engine = Engine(graph, program)
        engine.run()
        assert counter.read_host()[0] == 5

    def test_while_loop_guard_raises(self, toy_spec):
        graph, counter, flag, inc, check = _counter_graph(toy_spec)
        flag.write_host(1)
        # Body never clears the flag.
        program = RepeatWhileTrue(flag, Execute(inc), max_iterations=10)
        engine = Engine(graph, program)
        with pytest.raises(ExecutionError, match="exceeded"):
            engine.run()

    def test_if_then_branch(self, toy_spec):
        graph, counter, flag, inc, _ = _counter_graph(toy_spec)
        flag.write_host(1)
        Engine(graph, If(flag, Execute(inc))).run()
        assert counter.read_host()[0] == 1

    def test_if_else_branch(self, toy_spec):
        graph, counter, flag, inc, _ = _counter_graph(toy_spec)
        other = graph.add_scalar("other")
        dec = graph.add_compute_set("dec")
        dec.add_vertex(
            AddToScalar(), 0, {"out": ComputeGraph.full(other)}, params={"value": -1}
        )
        Engine(graph, If(flag, Execute(inc), Execute(dec))).run()
        assert counter.read_host()[0] == 0
        assert other.read_host()[0] == -1

    def test_if_without_else_skips(self, toy_spec):
        graph, counter, flag, inc, _ = _counter_graph(toy_spec)
        Engine(graph, If(flag, Execute(inc))).run()
        assert counter.read_host()[0] == 0

    def test_nop(self, toy_spec):
        graph, *_ = _counter_graph(toy_spec)
        report = Engine(graph, Nop()).run()
        assert report.supersteps == 0

    def test_copy_moves_data_and_charges_exchange(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        a = graph.add_tensor(
            "a", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        b = graph.add_tensor(
            "b", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        a.write_host(np.array([1, 2, 3, 4]))
        report = Engine(graph, Copy(a, b)).run()
        assert list(b.read_host()) == [1, 2, 3, 4]
        assert report.exchange_bytes == 16


class TestReentrancy:
    def test_reentrant_run_raises(self, toy_spec):
        # Regression: a second run() while one was in flight silently
        # cross-wired the in-flight run's profiler/tracer/metrics state
        # (the inner run's finally nulled them out from under the outer).
        graph, counter, _, inc, _ = _counter_graph(toy_spec)
        engine = Engine(graph, Repeat(3, Execute(inc)))
        seen = []
        original = engine._run_program

        def reenter(program):
            # _run_program recurses through control flow; re-enter once.
            if not seen:
                seen.append(True)
                with pytest.raises(ExecutionError, match="not reentrant"):
                    engine.run()
            return original(program)

        engine._run_program = reenter
        report = engine.run()  # the outer run must be unharmed
        assert seen == [True]
        assert counter.read_host()[0] == 3
        assert report.supersteps > 0

    def test_engine_is_reusable_after_reentrancy_error(self, toy_spec):
        graph, counter, _, inc, _ = _counter_graph(toy_spec)
        engine = Engine(graph, Repeat(2, Execute(inc)))
        engine._running = True
        with pytest.raises(ExecutionError, match="lease one engine"):
            engine.run()
        engine._running = False
        engine.run()
        assert counter.read_host()[0] == 2


class TestCostAccounting:
    def test_superstep_charges_all_three_phases(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (8,), np.float32, mapping=TileMapping.single_tile(8, tile=1)
        )
        compute_set = graph.add_compute_set("remote")
        compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.full(tensor)}, params={"value": 1}
        )
        report = Engine(graph, Execute(compute_set)).run()
        record = report.record_named("remote")
        assert record.compute_seconds > 0
        assert record.sync_seconds > 0
        assert record.exchange_seconds > 0
        assert record.exchange_bytes == 32

    def test_compute_cost_is_slowest_tile(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x",
            (40,),
            np.float32,
            mapping=TileMapping(
                40,
                # Tile 0 gets 4 elements, tile 1 gets 36: imbalance.
                (Interval(0, 0, 4), Interval(1, 4, 40)),
            ),
        )
        compute_set = graph.add_compute_set("unbalanced")
        fill = Fill()
        compute_set.add_vertex(
            fill, 0, {"data": ComputeGraph.span(tensor, 0, 4)}, params={"value": 1}
        )
        compute_set.add_vertex(
            fill, 1, {"data": ComputeGraph.span(tensor, 4, 40)}, params={"value": 2}
        )
        report = Engine(graph, Execute(compute_set)).run()

        # Compare against a balanced split of the same total work.
        graph2 = ComputeGraph(toy_spec)
        tensor2 = graph2.add_tensor(
            "x", (40,), np.float32,
            mapping=TileMapping.linear_segments(40, 20, [0, 1]),
        )
        compute_set2 = graph2.add_compute_set("balanced")
        for index in range(2):
            compute_set2.add_vertex(
                fill,
                index,
                {"data": ComputeGraph.span(tensor2, index * 20, (index + 1) * 20)},
                params={"value": 1},
            )
        report2 = Engine(graph2, Execute(compute_set2)).run()
        unbalanced = report.record_named("unbalanced").compute_seconds
        balanced = report2.record_named("balanced").compute_seconds
        assert unbalanced > balanced  # C3: the slowest tile sets the pace

    def test_host_io_charged_through_engine(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (1000,), np.float32, mapping=TileMapping.single_tile(1000)
        )
        compute_set = graph.add_compute_set("fill")
        compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.full(tensor)}, params={"value": 1}
        )
        engine = Engine(graph, Execute(compute_set))
        # write_tensor outside run() is free (profiler inactive)...
        engine.write_tensor(tensor, np.zeros(1000, dtype=np.float32))
        report = engine.run()
        assert report.host_io_seconds == 0.0

    def test_profiler_reset_between_runs(self, toy_spec):
        graph, counter, _, inc, _ = _counter_graph(toy_spec)
        engine = Engine(graph, Execute(inc))
        first = engine.run()
        second = engine.run()
        assert first.supersteps == second.supersteps == 1
        assert counter.read_host()[0] == 2


class TestModeEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(rows=st.integers(1, 6), seed=st.integers(0, 500))
    def test_batched_and_per_tile_agree(self, rows, seed):
        spec = IPUSpec.toy(num_tiles=4)
        cols = 8
        results = []
        for mode in ("batched", "per_tile"):
            graph = ComputeGraph(spec)
            matrix = graph.add_tensor(
                "m",
                (rows * 4, cols),
                np.int32,
                mapping=TileMapping.row_blocks((rows * 4, cols), range(4)),
            )
            compute_set = graph.add_compute_set("sort")
            sorter = SortRowsDescending()
            for tile in range(4):
                compute_set.add_vertex(
                    sorter,
                    tile,
                    {"block": ComputeGraph.rows(matrix, tile * rows, (tile + 1) * rows)},
                    params={"cols": cols},
                )
            engine = Engine(graph, Execute(compute_set), mode=mode)
            data = np.random.default_rng(seed).integers(
                -9, 9, (rows * 4, cols), dtype=np.int32
            )
            matrix.write_host(data)
            report = engine.run()
            results.append((matrix.read_host(), report.device_seconds))
        (data_a, time_a), (data_b, time_b) = results
        assert np.array_equal(data_a, data_b)
        assert time_a == pytest.approx(time_b, rel=1e-12)

    def test_unknown_mode_rejected(self, toy_spec):
        graph, _, _, inc, _ = _counter_graph(toy_spec)
        with pytest.raises(ExecutionError, match="unknown engine mode"):
            Engine(graph, Execute(inc), mode="warp")
