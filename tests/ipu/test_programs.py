"""Tests for control-program nodes."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.programs import (
    Copy,
    Execute,
    If,
    Nop,
    Repeat,
    RepeatWhileTrue,
    Sequence,
)


@pytest.fixture
def graph(toy_spec):
    return ComputeGraph(toy_spec)


class TestSequence:
    def test_flattens_iterables(self, graph):
        cs1 = graph.add_compute_set("a")
        cs2 = graph.add_compute_set("b")
        seq = Sequence([Execute(cs1)], Execute(cs2))
        assert [cs.name for cs in seq.compute_sets()] == ["a", "b"]

    def test_nested_collection(self, graph):
        cs = graph.add_compute_set("a")
        outer = Sequence(Sequence(Execute(cs)), Nop())
        assert outer.compute_sets() == (cs,)


class TestRepeat:
    def test_rejects_negative_count(self, graph):
        with pytest.raises(GraphConstructionError):
            Repeat(-1, Nop())

    def test_collects_body_compute_sets(self, graph):
        cs = graph.add_compute_set("a")
        assert Repeat(3, Execute(cs)).compute_sets() == (cs,)


class TestRepeatWhile:
    def test_condition_must_be_scalar(self, graph):
        vector = graph.add_tensor(
            "v", (3,), np.int32, mapping=TileMapping.single_tile(3)
        )
        with pytest.raises(GraphConstructionError, match="one-element"):
            RepeatWhileTrue(vector, Nop())

    def test_rejects_zero_max_iterations(self, graph):
        flag = graph.add_scalar("flag")
        with pytest.raises(GraphConstructionError):
            RepeatWhileTrue(flag, Nop(), max_iterations=0)


class TestIf:
    def test_collects_both_branches(self, graph):
        flag = graph.add_scalar("flag")
        cs1 = graph.add_compute_set("a")
        cs2 = graph.add_compute_set("b")
        node = If(flag, Execute(cs1), Execute(cs2))
        assert set(cs.name for cs in node.compute_sets()) == {"a", "b"}

    def test_else_optional(self, graph):
        flag = graph.add_scalar("flag")
        cs = graph.add_compute_set("a")
        assert If(flag, Execute(cs)).compute_sets() == (cs,)


class TestCopy:
    def test_size_mismatch_rejected(self, graph):
        a = graph.add_tensor("a", (2,), np.int32, mapping=TileMapping.single_tile(2))
        b = graph.add_tensor("b", (3,), np.int32, mapping=TileMapping.single_tile(3))
        with pytest.raises(GraphConstructionError, match="size mismatch"):
            Copy(a, b)

    def test_dtype_mismatch_rejected(self, graph):
        a = graph.add_tensor("a", (2,), np.int32, mapping=TileMapping.single_tile(2))
        b = graph.add_tensor(
            "b", (2,), np.float32, mapping=TileMapping.single_tile(2)
        )
        with pytest.raises(GraphConstructionError, match="dtype mismatch"):
            Copy(a, b)

    def test_same_tile_copy_is_exchange_free(self, graph):
        a = graph.add_tensor("a", (4,), np.int32, mapping=TileMapping.single_tile(4))
        b = graph.add_tensor("b", (4,), np.int32, mapping=TileMapping.single_tile(4))
        assert Copy(a, b).exchange_bytes() == 0

    def test_cross_tile_copy_counts_bytes(self, graph):
        a = graph.add_tensor(
            "a", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        b = graph.add_tensor(
            "b", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        assert Copy(a, b).exchange_bytes() == 16

    def test_shape_change_allowed(self, graph):
        a = graph.add_tensor("a", (2, 2), np.int32, mapping=TileMapping.single_tile(4))
        b = graph.add_tensor("b", (4,), np.int32, mapping=TileMapping.single_tile(4))
        Copy(a, b)  # no error
