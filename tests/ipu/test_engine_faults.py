"""Failure-injection tests: the engine must fail loudly, not silently."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.ipu.codelets import Codelet
from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.programs import Execute


class _BadCycleShape(Codelet):
    """Returns a malformed cycle array (one entry too many)."""

    fields = {"data": "inout"}

    def compute_all(self, views, params, cost):
        views["data"][...] = 0
        return np.zeros(views["data"].shape[0] + 1)


class _NonNumericCycles(Codelet):
    fields = {"data": "inout"}

    def compute_all(self, views, params, cost):
        return np.array(["not", "cycles"])


class _Raises(Codelet):
    """Blows up mid-compute, like a buggy kernel would."""

    fields = {"data": "inout"}

    def compute_all(self, views, params, cost):
        raise RuntimeError("boom")


def _one_vertex_graph(toy_spec, codelet):
    graph = ComputeGraph(toy_spec)
    tensor = graph.add_tensor(
        "x", (4,), np.int32, mapping=TileMapping.single_tile(4)
    )
    compute_set = graph.add_compute_set("cs")
    compute_set.add_vertex(codelet, 0, {"data": ComputeGraph.full(tensor)})
    return graph, Execute(compute_set)


class TestCodeletContractEnforcement:
    def test_wrong_cycle_shape_batched(self, toy_spec):
        graph, program = _one_vertex_graph(toy_spec, _BadCycleShape())
        engine = Engine(graph, program)
        with pytest.raises(ExecutionError, match="cycle array"):
            engine.run()

    def test_wrong_cycle_shape_per_tile(self, toy_spec):
        graph, program = _one_vertex_graph(toy_spec, _BadCycleShape())
        engine = Engine(graph, program, mode="per_tile")
        with pytest.raises(ExecutionError, match="cycle array"):
            engine.run()

    def test_non_numeric_cycles_rejected(self, toy_spec):
        graph, program = _one_vertex_graph(toy_spec, _NonNumericCycles())
        engine = Engine(graph, program)
        with pytest.raises((ExecutionError, ValueError)):
            engine.run()

    @pytest.mark.parametrize("mode", ["batched", "per_tile"])
    def test_raising_codelet_wrapped_with_compute_set_name(self, toy_spec, mode):
        """A codelet exception surfaces as ExecutionError naming the
        codelet and compute set, with the original as __cause__."""
        graph, program = _one_vertex_graph(toy_spec, _Raises())
        engine = Engine(graph, program, mode=mode)
        with pytest.raises(ExecutionError, match=r"_Raises.*'cs'") as excinfo:
            engine.run()
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "boom" in str(excinfo.value)


class TestStatePollution:
    def test_failed_run_does_not_wedge_the_engine(self, toy_spec):
        """After a fault, the engine can run a fresh program cleanly."""
        graph, program = _one_vertex_graph(toy_spec, _BadCycleShape())
        engine = Engine(graph, program)
        with pytest.raises(ExecutionError):
            engine.run()
        # The profiler must not leak across runs.
        assert engine._profiler is None
