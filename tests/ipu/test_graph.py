"""Tests for computation-graph construction."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.ipu.codelets import Codelet
from repro.ipu.graph import ComputeGraph, Connection
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import Fill


class TestTensors:
    def test_duplicate_names_rejected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        graph.add_tensor("x", (2,), np.int32)
        with pytest.raises(GraphConstructionError, match="duplicate"):
            graph.add_tensor("x", (3,), np.int32)

    def test_lookup(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (2,), np.int32)
        assert graph.tensor("x") is tensor

    def test_lookup_missing(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        with pytest.raises(GraphConstructionError, match="no tensor"):
            graph.tensor("nope")

    def test_add_scalar_maps_to_tile(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        scalar = graph.add_scalar("flag", tile=2)
        assert scalar.size == 1
        assert scalar.mapping.tile_of(0) == 2

    def test_graph_id_stamped(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (2,), np.int32)
        assert tensor.graph_id == graph.graph_id


class TestConnections:
    def test_full_and_span(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (4,), np.int32)
        assert ComputeGraph.full(tensor).length == 4
        assert ComputeGraph.span(tensor, 1, 3).length == 2

    def test_rows_helper(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        matrix = graph.add_tensor("m", (4, 3), np.float32)
        connection = ComputeGraph.rows(matrix, 1, 3)
        assert (connection.start, connection.stop) == (3, 9)

    def test_rows_rejects_vector(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        vector = graph.add_tensor("v", (4,), np.float32)
        with pytest.raises(GraphConstructionError, match="2-D"):
            ComputeGraph.rows(vector, 0, 1)

    def test_connection_bounds(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (4,), np.int32)
        with pytest.raises(GraphConstructionError):
            Connection(tensor, 2, 6)

    def test_connection_negative_start(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (4,), np.int32)
        with pytest.raises(GraphConstructionError, match="out of bounds"):
            Connection(tensor, -1, 2)

    def test_connection_empty_span(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (4,), np.int32)
        with pytest.raises(GraphConstructionError, match="out of bounds"):
            Connection(tensor, 2, 2)

    def test_connection_inverted_span(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor("x", (4,), np.int32)
        with pytest.raises(GraphConstructionError, match="out of bounds"):
            Connection(tensor, 3, 1)


class TestVertices:
    def test_field_signature_enforced(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        compute_set = graph.add_compute_set("cs")
        with pytest.raises(GraphConstructionError, match="connects fields"):
            compute_set.add_vertex(
                Fill(), 0, {"wrong_name": ComputeGraph.full(tensor)}
            )

    def test_negative_tile_rejected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        compute_set = graph.add_compute_set("cs")
        with pytest.raises(GraphConstructionError, match="negative tile"):
            compute_set.add_vertex(Fill(), -1, {"data": ComputeGraph.full(tensor)})

    def test_codelet_names_deduplicated(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        compute_set = graph.add_compute_set("cs")
        fill = Fill()
        compute_set.add_vertex(fill, 0, {"data": ComputeGraph.span(tensor, 0, 2)})
        compute_set.add_vertex(fill, 1, {"data": ComputeGraph.span(tensor, 2, 4)})
        assert compute_set.codelets == ("Fill",)


class TestExchangeAccounting:
    def test_local_connection_free(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        compute_set = graph.add_compute_set("cs")
        vertex = compute_set.add_vertex(
            Fill(), 1, {"data": ComputeGraph.full(tensor)}
        )
        assert vertex.exchange_bytes() == 0

    def test_remote_connection_counted(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        compute_set = graph.add_compute_set("cs")
        vertex = compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.full(tensor)}
        )
        assert vertex.exchange_bytes() == 16

    def test_partial_overlap_counted(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x",
            (4,),
            np.int32,
            mapping=TileMapping.linear_segments(4, 2, [0, 1]),
        )
        compute_set = graph.add_compute_set("cs")
        vertex = compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.full(tensor)}
        )
        # Elements 2..3 live on tile 1: 2 * 4 bytes cross the fabric.
        assert vertex.exchange_bytes() == 8


class TestCodeletValidation:
    def test_codelet_without_fields_rejected(self):
        class Empty(Codelet):
            fields = {}

            def compute_all(self, views, params, cost):  # pragma: no cover
                return None

        with pytest.raises(GraphConstructionError, match="no fields"):
            Empty()

    def test_codelet_with_bad_direction_rejected(self):
        class Bad(Codelet):
            fields = {"x": "sideways"}

            def compute_all(self, views, params, cost):  # pragma: no cover
                return None

        with pytest.raises(GraphConstructionError, match="invalid direction"):
            Bad()
