"""Tests for graph tensors."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.ipu.mapping import TileMapping
from repro.ipu.tensor import Tensor


class TestConstruction:
    def test_basic(self):
        tensor = Tensor("t", (2, 3), np.dtype(np.float32))
        assert tensor.size == 6
        assert tensor.nbytes == 24
        assert tensor.ndim == 2
        assert np.all(tensor.data == 0)

    def test_rejects_unnamed(self):
        with pytest.raises(GraphConstructionError):
            Tensor("", (2,), np.dtype(np.float32))

    def test_rejects_zero_dim(self):
        with pytest.raises(GraphConstructionError):
            Tensor("t", (2, 0), np.dtype(np.float32))

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(GraphConstructionError, match="unsupported"):
            Tensor("t", (2,), np.dtype(np.complex128))


class TestMapping:
    def test_set_mapping_checks_size(self):
        tensor = Tensor("t", (4,), np.dtype(np.int32))
        with pytest.raises(GraphConstructionError, match="mapping covers"):
            tensor.set_mapping(TileMapping.single_tile(3))

    def test_require_mapping_raises_when_unmapped(self):
        tensor = Tensor("t", (4,), np.dtype(np.int32))
        with pytest.raises(GraphConstructionError, match="no tile mapping"):
            tensor.require_mapping()

    def test_set_mapping_returns_self(self):
        tensor = Tensor("t", (4,), np.dtype(np.int32))
        assert tensor.set_mapping(TileMapping.single_tile(4)) is tensor


class TestViews:
    def test_region_is_writable_view(self):
        tensor = Tensor("t", (2, 2), np.dtype(np.float64))
        tensor.region(1, 3)[:] = 7.0
        assert tensor.data[0, 1] == 7.0
        assert tensor.data[1, 0] == 7.0

    def test_region_bounds_checked(self):
        tensor = Tensor("t", (2, 2), np.dtype(np.float64))
        with pytest.raises(GraphConstructionError):
            tensor.region(0, 5)
        with pytest.raises(GraphConstructionError):
            tensor.region(3, 3)

    def test_host_write_scalar_broadcast(self):
        tensor = Tensor("t", (2, 2), np.dtype(np.int32))
        tensor.write_host(-1)
        assert np.all(tensor.data == -1)

    def test_host_write_reshapes(self):
        tensor = Tensor("t", (2, 2), np.dtype(np.int32))
        tensor.write_host(np.arange(4))
        assert tensor.data[1, 1] == 3

    def test_host_read_is_copy(self):
        tensor = Tensor("t", (2,), np.dtype(np.int32))
        copy = tensor.read_host()
        copy[0] = 9
        assert tensor.data[0] == 0


class TestBufferVersion:
    """``Tensor.version`` is the cache key for compiled gather views."""

    def test_starts_at_zero(self):
        assert Tensor("t", (4,), np.dtype(np.int32)).version == 0

    def test_in_place_writes_do_not_bump(self):
        tensor = Tensor("t", (4,), np.dtype(np.int32))
        tensor.write_host(np.arange(4))
        tensor.data[0] = 99
        tensor.flat()[1] = 98
        assert tensor.version == 0

    def test_rebind_bumps_every_time(self):
        tensor = Tensor("t", (4,), np.dtype(np.int32))
        tensor.data = np.zeros(4, dtype=np.int32)
        assert tensor.version == 1
        tensor.data = np.ones(4, dtype=np.int32)
        assert tensor.version == 2
