"""Property fuzzing of the BSP engine.

Generates random (but valid) computation graphs — random tile counts,
tensor sizes, segmentations, vertex placements, codelet mixes — and checks
the engine's core contract on each: the batched fast path and the per-tile
reference path produce identical tensor contents and identical modeled
device time, and re-running is deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import Fill, SortRowsDescending, VecReduce, build_reduce
from repro.ipu.programs import Execute, Program, Sequence
from repro.ipu.spec import IPUSpec


def _build_random_graph(
    num_tiles: int,
    segments: int,
    segment_len: int,
    cols: int,
    values: list[int],
    reduce_op: str,
) -> tuple[ComputeGraph, Program, list]:
    """One random-but-valid graph: segmented fill + row sort + reduce."""
    spec = IPUSpec.toy(num_tiles=num_tiles)
    graph = ComputeGraph(spec)
    size = segments * segment_len
    vector = graph.add_tensor(
        "vector",
        (size,),
        np.int32,
        mapping=TileMapping.linear_segments(size, segment_len, range(num_tiles)),
    )
    rows = max(1, size // cols)
    matrix = graph.add_tensor(
        "matrix",
        (rows, cols),
        np.float32,
        mapping=TileMapping.row_blocks((rows, cols), range(num_tiles)),
    )
    out = graph.add_scalar("out", np.int32)

    fill = graph.add_compute_set("fill")
    codelet = Fill()
    for index in range(segments):
        fill.add_vertex(
            codelet,
            index % num_tiles,
            {
                "data": ComputeGraph.span(
                    vector, index * segment_len, (index + 1) * segment_len
                )
            },
            params={"value": values[index % len(values)]},
        )
    sort = graph.add_compute_set("sort")
    sorter = SortRowsDescending()
    mapping = matrix.require_mapping()
    for interval in mapping.intervals:
        sort.add_vertex(
            sorter,
            interval.tile,
            {"block": ComputeGraph.span(matrix, interval.start, interval.stop)},
            params={"cols": cols},
        )
    reduce_prog = build_reduce(graph, vector, reduce_op, out, "fuzz")
    program = Sequence(Execute(fill), Execute(sort), reduce_prog)
    return graph, program, [vector, matrix, out]


@settings(max_examples=25, deadline=None)
@given(
    num_tiles=st.integers(2, 6),
    segments=st.integers(1, 9),
    segment_len=st.integers(1, 7),
    cols=st.integers(1, 6),
    values=st.lists(st.integers(-9, 9), min_size=1, max_size=4),
    reduce_op=st.sampled_from(["min", "max", "sum"]),
    seed=st.integers(0, 999),
)
def test_batched_equals_per_tile_on_random_graphs(
    num_tiles, segments, segment_len, cols, values, reduce_op, seed
):
    outcomes = []
    for mode in ("batched", "per_tile"):
        graph, program, tensors = _build_random_graph(
            num_tiles, segments, segment_len, cols, values, reduce_op
        )
        matrix = tensors[1]
        matrix.write_host(
            np.random.default_rng(seed)
            .uniform(-5, 5, matrix.shape)
            .astype(np.float32)
        )
        engine = Engine(graph, program, mode=mode)
        report = engine.run()
        outcomes.append(
            (
                [tensor.read_host() for tensor in tensors],
                report.device_seconds,
                report.supersteps,
            )
        )
    (data_a, time_a, steps_a), (data_b, time_b, steps_b) = outcomes
    for array_a, array_b in zip(data_a, data_b):
        assert np.array_equal(array_a, array_b)
    assert time_a == pytest.approx(time_b, rel=1e-12)
    assert steps_a == steps_b


@settings(max_examples=15, deadline=None)
@given(
    num_tiles=st.integers(2, 6),
    segments=st.integers(1, 9),
    segment_len=st.integers(1, 7),
    cols=st.integers(1, 6),
    values=st.lists(st.integers(-9, 9), min_size=1, max_size=4),
    reduce_op=st.sampled_from(["min", "max", "sum"]),
)
def test_checker_accepts_both_modes(
    num_tiles, segments, segment_len, cols, values, reduce_op
):
    """The constraint checker sees the same graph whichever engine mode
    runs it: strict compilation succeeds in both modes and the diagnostic
    lists are identical (mode is an execution strategy, not a graph
    property)."""
    reports = []
    for mode in ("batched", "per_tile"):
        graph, program, _ = _build_random_graph(
            num_tiles, segments, segment_len, cols, values, reduce_op
        )
        engine = Engine(graph, program, mode=mode, check="strict")
        reports.append(engine.compiled.check_report)
    batched, per_tile = reports
    assert batched is not None and per_tile is not None
    assert batched.ok and per_tile.ok
    assert batched.diagnostics == per_tile.diagnostics
    assert batched.compute_sets_checked == per_tile.compute_sets_checked
    assert batched.vertices_checked == per_tile.vertices_checked


@settings(max_examples=15, deadline=None)
@given(
    num_tiles=st.integers(2, 5),
    segments=st.integers(1, 6),
    segment_len=st.integers(1, 5),
    seed=st.integers(0, 999),
)
def test_rerun_is_deterministic(num_tiles, segments, segment_len, seed):
    graph, program, tensors = _build_random_graph(
        num_tiles, segments, segment_len, 3, [1, 2], "sum"
    )
    matrix = tensors[1]
    data = (
        np.random.default_rng(seed).uniform(-5, 5, matrix.shape).astype(np.float32)
    )
    engine = Engine(graph, program)
    matrix.write_host(data)
    first = engine.run()
    matrix.write_host(data)
    second = engine.run()
    assert first.device_seconds == pytest.approx(second.device_seconds, rel=1e-12)
    assert first.supersteps == second.supersteps
