"""Differential tests across the three profiling depths.

Lite (aggregate-only), detailed (per-compute-set), and deep (per-tile)
profiling must tell the same story: every depth accumulates the run totals
through the same statements in the same order, so supersteps, compute
cycles, phase seconds, and byte volumes are **bit-identical** — exact
``==``, not approx.  A drift here means the profiling mode changed what
was measured, which would silently invalidate the lite-mode batch
throughput numbers against the detailed benchmark tables.
"""

import pytest

from repro.core.solver import HunIPUSolver
from repro.data.synthetic import uniform_instance


def _reports(size, engine_mode, seed=11):
    """Solve the same instance at each depth; return the three reports."""
    instance = uniform_instance(size, 1, seed=seed)
    reports = {}
    for depth in ("lite", "detailed", "deep"):
        solver = HunIPUSolver(
            engine_mode=engine_mode, profile_tiles=depth == "deep"
        )
        compiled = solver.compiled_for(size)
        report = solver._run_engine(
            compiled, instance, profile_detail=depth != "lite"
        )
        reports[depth] = report
    return reports


@pytest.mark.parametrize("engine_mode", ["batched", "per_tile"])
@pytest.mark.parametrize("size", [8, 16, 32])
class TestBitIdenticalTotals:
    def test_headline_totals_identical(self, size, engine_mode):
        reports = _reports(size, engine_mode)
        lite, detailed, deep = (
            reports["lite"], reports["detailed"], reports["deep"]
        )
        for other in (detailed, deep):
            assert other.supersteps == lite.supersteps
            assert other.compute_cycles == lite.compute_cycles
            assert other.phase_compute_seconds == lite.phase_compute_seconds
            assert other.phase_sync_seconds == lite.phase_sync_seconds
            assert other.phase_exchange_seconds == lite.phase_exchange_seconds
            assert other.device_seconds == lite.device_seconds
            assert other.exchange_bytes == lite.exchange_bytes
            assert other.inter_ipu_bytes == lite.inter_ipu_bytes

    def test_lite_aggregate_record_matches_detailed_sums(self, size, engine_mode):
        reports = _reports(size, engine_mode)
        (aggregate,) = reports["lite"].records
        detailed = reports["detailed"].records
        assert aggregate.name == "all/aggregate"
        assert aggregate.executions == sum(r.executions for r in detailed)
        assert aggregate.exchange_bytes == sum(r.exchange_bytes for r in detailed)
        assert aggregate.compute_cycles == reports["detailed"].compute_cycles

    def test_detailed_and_deep_records_identical(self, size, engine_mode):
        reports = _reports(size, engine_mode)
        detailed = {r.name: r for r in reports["detailed"].records}
        deep = {r.name: r for r in reports["deep"].records}
        assert detailed.keys() == deep.keys()
        for name, record in detailed.items():
            assert deep[name] == record  # dataclass field-wise equality


@pytest.mark.parametrize("engine_mode", ["batched", "per_tile"])
class TestDeepAttributionConsistency:
    """Per-tile attribution must re-sum to the aggregate totals."""

    def test_per_set_cycles_sum_to_aggregate(self, engine_mode):
        report = _reports(16, engine_mode)["deep"]
        tiles = report.tiles
        assert tiles is not None
        # Charged cycles per compute set accumulate the identical stream
        # as the StepRecords -> exact equality per name and in total.
        by_name = {stats.name: stats for stats in tiles.compute_sets}
        for record in report.records:
            assert by_name[record.name].compute_cycles == record.compute_cycles
        assert tiles.compute_cycles == report.compute_cycles

    def test_series_aligns_with_superstep_timeline(self, engine_mode):
        report = _reports(16, engine_mode)["deep"]
        tiles = report.tiles
        # Every engine superstep (copies included) appears in the series;
        # `supersteps` counts the compute-only subset.
        assert len(tiles.series) == report.supersteps
        compute_samples = [s for s in tiles.series if s.straggler_tile >= 0]
        assert len(compute_samples) == tiles.supersteps
        assert sum(s.total_seconds for s in tiles.series) == pytest.approx(
            report.device_seconds
        )

    def test_exchange_by_tensor_totals(self, engine_mode):
        report = _reports(16, engine_mode)["deep"]
        tiles = report.tiles
        per_set_total = sum(
            sum(stats.exchange_by_tensor.values()) for stats in tiles.compute_sets
        )
        assert sum(tiles.exchange_by_tensor.values()) == per_set_total
        assert per_set_total == report.exchange_bytes

    def test_solution_unaffected_by_profiling_depth(self, engine_mode):
        instance = uniform_instance(16, 1, seed=11)
        baseline = HunIPUSolver(engine_mode=engine_mode).solve(instance)
        deep = HunIPUSolver(
            engine_mode=engine_mode, profile_tiles=True
        ).solve(instance)
        assert deep.total_cost == baseline.total_cost
        assert (deep.assignment == baseline.assignment).all()


def test_solver_facade_deep_profile_reaches_stats():
    solver = HunIPUSolver(profile_tiles=True)
    result = solver.solve(uniform_instance(8, 1, seed=0))
    report = result.stats["profile"]
    assert report.tiles is not None
    assert report.tiles.tiles_used > 0
    assert report.tiles.compute_cycles == report.compute_cycles
