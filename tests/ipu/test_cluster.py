"""Tests for the cluster layer: ClusterSpec, the inter-IPU link cost
model, hierarchical reduces, and the profiler's external-sync charging."""

import dataclasses

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.ipu.cluster import (
    IPU_LINK_BANDWIDTH_BYTES_PER_S,
    IPU_LINK_LATENCY_S,
    IPU_LINK_SYNC_CYCLES,
    ClusterSpec,
)
from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import build_reduce, chip_slices
from repro.ipu.programs import Copy, Sequence
from repro.ipu.spec import IPUSpec


class TestClusterSpec:
    def test_defaults_are_published_link_numbers(self):
        cluster = ClusterSpec()
        assert cluster.link_bandwidth_bytes_per_s == IPU_LINK_BANDWIDTH_BYTES_PER_S
        assert cluster.link_latency_s == IPU_LINK_LATENCY_S
        assert cluster.inter_sync_cycles == IPU_LINK_SYNC_CYCLES
        # An order of magnitude below the on-chip fabric, per the
        # microbenchmarking paper.
        assert (
            cluster.link_bandwidth_bytes_per_s
            < cluster.chip.exchange_bandwidth_bytes_per_s / 10
        )

    def test_rejects_multi_chip_chip(self):
        with pytest.raises(ValueError, match="single-chip"):
            ClusterSpec(chip=IPUSpec.toy(num_ipus=2))

    def test_rejects_zero_ipus(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterSpec(chip=IPUSpec.toy(), num_ipus=0)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("link_bandwidth_bytes_per_s", 0.0),
            ("link_bandwidth_bytes_per_s", -1.0),
            ("link_latency_s", -1e-9),
            ("inter_sync_cycles", -1),
        ],
    )
    def test_rejects_bad_link_parameters(self, field, value):
        with pytest.raises(ValueError):
            ClusterSpec(chip=IPUSpec.toy(), **{field: value})

    def test_total_tiles(self):
        assert ClusterSpec.toy(num_tiles=4, num_ipus=2).total_tiles == 8
        assert ClusterSpec.m2000().total_tiles == 4 * 1472

    def test_system_flattens_to_spec(self):
        cluster = ClusterSpec.toy(num_tiles=4, num_ipus=2)
        spec = cluster.system()
        assert isinstance(spec, IPUSpec)
        assert spec.num_ipus == 2
        assert spec.num_tiles == 4  # per chip; tiles stay flat-addressed
        assert spec.total_tiles == 8
        assert spec.inter_ipu_bandwidth_bytes_per_s == cluster.link_bandwidth_bytes_per_s
        assert spec.inter_ipu_latency_s == cluster.link_latency_s
        assert spec.inter_ipu_sync_cycles == cluster.inter_sync_cycles

    def test_system_of_single_chip_matches_chip(self):
        """A 1-IPU cluster is the chip — the golden traces must not move."""
        chip = IPUSpec.toy(num_tiles=4)
        system = ClusterSpec(chip=chip, num_ipus=1).system()
        assert system == dataclasses.replace(
            chip,
            inter_ipu_bandwidth_bytes_per_s=IPU_LINK_BANDWIDTH_BYTES_PER_S,
            inter_ipu_latency_s=IPU_LINK_LATENCY_S,
            inter_ipu_sync_cycles=IPU_LINK_SYNC_CYCLES,
        )


class TestSpecLinkFields:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("inter_ipu_bandwidth_bytes_per_s", 0.0),
            ("inter_ipu_bandwidth_bytes_per_s", -5.0),
            ("inter_ipu_latency_s", -1e-6),
            ("inter_ipu_sync_cycles", -1),
        ],
    )
    def test_spec_validates_link_fields(self, field, value):
        with pytest.raises(ValueError):
            IPUSpec(**{field: value})

    def test_inter_sync_extra_seconds(self):
        spec = IPUSpec.mk2()
        assert spec.inter_ipu_sync_extra_seconds() == pytest.approx(
            spec.inter_ipu_sync_cycles / spec.clock_hz
        )

    def test_exchange_includes_link_latency(self):
        spec = IPUSpec.mk2()
        # One cross-chip byte still pays the full microsecond of latency.
        assert spec.exchange_seconds(0, inter_ipu_bytes=1) >= spec.inter_ipu_latency_s


class TestChipSlices:
    def test_single_chip_is_one_slice(self):
        assert chip_slices([0, 1, 2, 3], 4) == [(0, 0, 4)]

    def test_contiguous_chips(self):
        assert chip_slices([0, 1, 4, 5], 4) == [(0, 0, 2), (1, 2, 4)]
        assert chip_slices([2, 4, 8], 4) == [(0, 0, 1), (1, 1, 2), (2, 2, 3)]

    def test_interleaved_chips_return_none(self):
        assert chip_slices([0, 4, 1], 4) is None
        assert chip_slices([4, 0, 4], 4) is None

    def test_empty(self):
        assert chip_slices([], 4) == []


class TestHierarchicalReduce:
    def _reduce(self, spec, tiles, data, op):
        graph = ComputeGraph(spec)
        source = graph.add_tensor(
            "src",
            (len(data),),
            np.float32,
            mapping=TileMapping.linear_segments(
                len(data), len(data) // len(tiles), tiles
            ),
        )
        out = graph.add_tensor(
            "out", (1,), np.float32, mapping=TileMapping.single_tile(1)
        )
        program = build_reduce(graph, source, op, out, "r")
        source.write_host(np.asarray(data, dtype=np.float32))
        Engine(graph, program).run()
        return graph, program, float(out.read_host()[0])

    @pytest.mark.parametrize("op", ["min", "max", "sum"])
    def test_multi_chip_reduce_is_three_stage_and_exact(self, op):
        spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        data = [3.0, -7.0, 11.0, 2.0, 5.0, -1.0, 0.0, 9.0]
        graph, program, got = self._reduce(spec, [0, 1, 2, 3], data, op)
        assert isinstance(program, Sequence)
        assert len(program.programs) == 3  # partial -> ipu -> final
        assert "r/ipu_partials" in [t.name for t in graph.tensors]
        expected = {"min": min, "max": max, "sum": sum}[op](data)
        assert got == expected

    def test_single_chip_reduce_stays_two_stage(self):
        spec = IPUSpec.toy(num_tiles=4)
        data = [3.0, -7.0, 11.0, 2.0, 5.0, -1.0, 0.0, 9.0]
        graph, program, got = self._reduce(spec, [0, 1, 2, 3], data, "min")
        assert len(program.programs) == 2
        assert "r/ipu_partials" not in [t.name for t in graph.tensors]
        assert got == min(data)

    def test_hierarchical_matches_flat_bitwise(self):
        """Regrouping min over chips must not change a single bit."""
        rng = np.random.default_rng(3)
        data = rng.uniform(-1e6, 1e6, 16).astype(np.float32)
        flat_spec = IPUSpec.toy(num_tiles=4)
        multi_spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        _, _, flat = self._reduce(flat_spec, [0, 1, 2, 3], list(data), "min")
        _, _, hier = self._reduce(multi_spec, [0, 1, 2, 3], list(data), "min")
        assert np.float32(flat).tobytes() == np.float32(hier).tobytes()

    def test_reduce_rejects_vector_target_multi_chip(self):
        spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        graph = ComputeGraph(spec)
        source = graph.add_tensor(
            "src", (4,), np.float32, mapping=TileMapping.single_tile(4)
        )
        out = graph.add_tensor(
            "out", (2,), np.float32, mapping=TileMapping.single_tile(2)
        )
        with pytest.raises(GraphConstructionError, match="scalar"):
            build_reduce(graph, source, "min", out, "bad")


class TestInterSyncCharging:
    def _cross_chip_copy_report(self, spec):
        graph = ComputeGraph(spec)
        src = graph.add_tensor(
            "src", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        dst = graph.add_tensor(
            "dst",
            (4,),
            np.int32,
            mapping=TileMapping.single_tile(4, tile=spec.num_tiles),
        )
        return Engine(graph, Copy(src, dst)).run()

    def test_cross_chip_superstep_counts_external_sync(self):
        spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        report = self._cross_chip_copy_report(spec)
        assert report.inter_ipu_syncs == 1
        assert report.inter_ipu_bytes == 16

    def test_external_sync_surcharges_phase_sync(self):
        spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        report = self._cross_chip_copy_report(spec)
        expected = (
            report.supersteps * spec.sync_seconds()
            + report.inter_ipu_syncs * spec.inter_ipu_sync_extra_seconds()
        )
        assert report.phase_seconds["sync"] == pytest.approx(expected)

    def test_on_chip_superstep_pays_no_surcharge(self):
        spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        graph = ComputeGraph(spec)
        src = graph.add_tensor(
            "src", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        dst = graph.add_tensor(
            "dst", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        report = Engine(graph, Copy(src, dst)).run()
        assert report.inter_ipu_syncs == 0
        assert report.phase_seconds["sync"] == pytest.approx(
            report.supersteps * spec.sync_seconds()
        )

    def test_single_ipu_sync_unchanged(self):
        """Single-chip phase_sync must stay the exact pre-cluster product
        (bit-identity of the committed profile artifacts depends on it)."""
        spec = IPUSpec.toy(num_tiles=4)
        graph = ComputeGraph(spec)
        src = graph.add_tensor(
            "src", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=0)
        )
        dst = graph.add_tensor(
            "dst", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=3)
        )
        report = Engine(graph, Copy(src, dst)).run()
        assert report.inter_ipu_syncs == 0
        assert report.phase_seconds["sync"] == report.supersteps * spec.sync_seconds()
