"""Tests for the generic codelet library (against plain numpy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphConstructionError
from repro.ipu.codelets import CostContext
from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import (
    AddToScalar,
    ColPartialMin,
    Fill,
    GatherColumn,
    RowMin,
    ScalarBinaryCompare,
    ScalarCompare,
    SortRowsDescending,
    SubtractColMin,
    SubtractRowMin,
    VecReduce,
    WriteScalar,
    build_reduce,
)
from repro.ipu.spec import IPUSpec

COST = CostContext()


def _views(**arrays):
    return {name: np.atleast_2d(array) for name, array in arrays.items()}


class TestElementwiseCodelets:
    def test_fill(self):
        data = np.zeros((2, 3))
        Fill().compute_all(
            {"data": data}, {"value": np.array([5.0, 7.0])}, COST
        )
        assert np.all(data[0] == 5.0)
        assert np.all(data[1] == 7.0)

    def test_vec_reduce_ops(self):
        data = np.array([[3.0, 1.0, 2.0]])
        for op, expected in [("min", 1.0), ("max", 3.0), ("sum", 6.0)]:
            out = np.zeros((1, 1))
            VecReduce(op).compute_all({"data": data, "out": out}, {}, COST)
            assert out[0, 0] == expected

    def test_vec_reduce_rejects_unknown_op(self):
        with pytest.raises(GraphConstructionError):
            VecReduce("median")

    def test_vec_reduce_name_includes_op(self):
        assert VecReduce("min").name == "VecReduce[min]"

    def test_row_min_and_subtract(self):
        block = np.array([[4.0, 2.0, 9.0, 1.0]])  # 2x2 block flattened
        mins = np.zeros((1, 2))
        RowMin().compute_all(
            {"block": block, "mins": mins}, {"cols": np.array([2.0])}, COST
        )
        assert list(mins[0]) == [2.0, 1.0]
        SubtractRowMin().compute_all(
            {"block": block, "mins": mins}, {"cols": np.array([2.0])}, COST
        )
        assert list(block[0]) == [2.0, 0.0, 8.0, 0.0]

    def test_col_partial_min(self):
        block = np.array([[4.0, 2.0, 1.0, 9.0]])  # 2x2
        partial = np.zeros((1, 2))
        ColPartialMin().compute_all(
            {"block": block, "partial": partial}, {"cols": np.array([2.0])}, COST
        )
        assert list(partial[0]) == [1.0, 2.0]

    def test_subtract_col_min(self):
        block = np.array([[4.0, 2.0, 1.0, 9.0]])
        colmin = np.array([[1.0, 2.0]])
        SubtractColMin().compute_all(
            {"block": block, "colmin": colmin}, {"cols": np.array([2.0])}, COST
        )
        assert list(block[0]) == [3.0, 0.0, 0.0, 7.0]

    def test_sort_rows_descending(self):
        block = np.array([[3, -1, 7, 0, 5, 2]], dtype=np.int32)
        SortRowsDescending().compute_all(
            {"block": block}, {"cols": np.array([3.0])}, COST
        )
        assert list(block[0]) == [7, 3, -1, 5, 2, 0]

    def test_gather_column(self):
        block = np.arange(6.0).reshape(1, 6)  # 2x3
        index = np.array([[2]])
        out = np.zeros((1, 2))
        GatherColumn().compute_all(
            {"block": block, "index": index, "out": out},
            {"cols": np.array([3.0])},
            COST,
        )
        assert list(out[0]) == [2.0, 5.0]


class TestScalarCodelets:
    def test_write_scalar(self):
        out = np.zeros((1, 1), dtype=np.int32)
        WriteScalar().compute_all({"out": out}, {"value": np.array([9.0])}, COST)
        assert out[0, 0] == 9

    def test_add_to_scalar(self):
        out = np.array([[5]], dtype=np.int32)
        AddToScalar().compute_all({"out": out}, {"value": np.array([3.0])}, COST)
        assert out[0, 0] == 8

    @pytest.mark.parametrize(
        "op,a,threshold,expected",
        [
            ("eq", 3, 3, 1),
            ("ne", 3, 3, 0),
            ("lt", 2, 3, 1),
            ("le", 3, 3, 1),
            ("gt", 2, 3, 0),
            ("ge", 4, 3, 1),
        ],
    )
    def test_scalar_compare(self, op, a, threshold, expected):
        flag = np.zeros((1, 1), dtype=np.int32)
        ScalarCompare(op, threshold).compute_all(
            {"a": np.array([[a]]), "flag": flag}, {}, COST
        )
        assert flag[0, 0] == expected

    def test_scalar_compare_rejects_unknown(self):
        with pytest.raises(GraphConstructionError):
            ScalarCompare("spaceship", 0)

    def test_binary_compare(self):
        flag = np.zeros((1, 1), dtype=np.int32)
        ScalarBinaryCompare("lt").compute_all(
            {"a": np.array([[2]]), "b": np.array([[5]]), "flag": flag}, {}, COST
        )
        assert flag[0, 0] == 1

    def test_binary_compare_rejects_unknown(self):
        with pytest.raises(GraphConstructionError):
            ScalarBinaryCompare("between")


class TestBuildReduce:
    @settings(max_examples=20, deadline=None)
    @given(
        size=st.integers(2, 40),
        op=st.sampled_from(["min", "max", "sum"]),
        seed=st.integers(0, 1000),
    )
    def test_distributed_reduce_matches_numpy(self, size, op, seed):
        graph = ComputeGraph(IPUSpec.toy(num_tiles=4))
        source = graph.add_tensor(
            "src",
            (size,),
            np.float32,
            mapping=TileMapping.linear_segments(size, max(1, size // 3), range(4)),
        )
        out = graph.add_tensor(
            "out", (1,), np.float32, mapping=TileMapping.single_tile(1)
        )
        program = build_reduce(graph, source, op, out, "test")
        engine = Engine(graph, program)
        data = np.random.default_rng(seed).uniform(-50, 50, size).astype(np.float32)
        source.write_host(data)
        engine.run()
        expected = {"min": np.min, "max": np.max, "sum": np.sum}[op](data)
        # Two-stage float32 summation orders differently from numpy's
        # pairwise sum; near-cancelling sums need an absolute tolerance
        # scaled to the input magnitude (50 * eps_f32 per element).
        assert out.read_host()[0] == pytest.approx(
            expected, rel=1e-4, abs=50 * 1.2e-7 * size * 4
        )

    def test_reduce_rejects_vector_target(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        source = graph.add_tensor(
            "src", (4,), np.float32, mapping=TileMapping.single_tile(4)
        )
        out = graph.add_tensor(
            "out", (2,), np.float32, mapping=TileMapping.single_tile(2)
        )
        with pytest.raises(GraphConstructionError, match="scalar"):
            build_reduce(graph, source, "min", out, "bad")
