"""Tests for compile-time checks and execution planning."""

import numpy as np
import pytest

from repro.errors import CompilationError, TileMemoryError
from repro.ipu.compiler import compile_graph
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import Fill, VecReduce
from repro.ipu.programs import Execute, Sequence
from repro.ipu.spec import IPUSpec


def _filled_graph(spec, *, tile=0, size=4):
    graph = ComputeGraph(spec)
    tensor = graph.add_tensor(
        "x", (size,), np.int32, mapping=TileMapping.single_tile(size, tile)
    )
    compute_set = graph.add_compute_set("fill")
    compute_set.add_vertex(
        Fill(), tile, {"data": ComputeGraph.full(tensor)}, params={"value": 1}
    )
    return graph, Execute(compute_set)


class TestChecks:
    def test_unmapped_tensor_rejected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        graph.add_tensor("dangling", (4,), np.int32)
        with pytest.raises(CompilationError, match="unmapped"):
            compile_graph(graph, Sequence())

    def test_tile_out_of_range_rejected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=99)
        )
        with pytest.raises(CompilationError, match="tile 99"):
            compile_graph(graph, Sequence())

    def test_memory_budget_enforced(self):
        spec = IPUSpec(num_tiles=2, tile_memory_bytes=64)
        graph = ComputeGraph(spec)
        graph.add_tensor(
            "big", (100,), np.float64, mapping=TileMapping.single_tile(100)
        )
        with pytest.raises(TileMemoryError, match="C2"):
            compile_graph(graph, Sequence())

    def test_memory_budget_counts_all_tensors_on_tile(self):
        spec = IPUSpec(num_tiles=2, tile_memory_bytes=100)
        graph = ComputeGraph(spec)
        graph.add_tensor("a", (10,), np.float64, mapping=TileMapping.single_tile(10))
        graph.add_tensor("b", (10,), np.float64, mapping=TileMapping.single_tile(10))
        with pytest.raises(TileMemoryError):
            compile_graph(graph, Sequence())

    def test_vertex_tile_out_of_range(self, toy_spec):
        graph, _ = _filled_graph(toy_spec)
        tensor = graph.tensor("x")
        bad = graph.add_compute_set("bad")
        bad.add_vertex(
            Fill(), toy_spec.num_tiles, {"data": ComputeGraph.full(tensor)},
            params={"value": 0},
        )
        with pytest.raises(CompilationError, match="placed on tile"):
            compile_graph(graph, Execute(bad))

    def test_empty_compute_set_rejected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        empty = graph.add_compute_set("empty")
        with pytest.raises(CompilationError, match="no vertices"):
            compile_graph(graph, Execute(empty))

    def test_foreign_tensor_rejected(self, toy_spec):
        graph_a = ComputeGraph(toy_spec)
        graph_b = ComputeGraph(toy_spec)
        foreign = graph_b.add_tensor(
            "f", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        compute_set = graph_a.add_compute_set("cs")
        compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.full(foreign)}, params={"value": 0}
        )
        with pytest.raises(CompilationError, match="another graph"):
            compile_graph(graph_a, Execute(compute_set))

    def test_overlapping_writes_rejected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        compute_set = graph.add_compute_set("race")
        fill = Fill()
        compute_set.add_vertex(
            fill, 0, {"data": ComputeGraph.span(tensor, 0, 3)}, params={"value": 1}
        )
        compute_set.add_vertex(
            fill, 1, {"data": ComputeGraph.span(tensor, 2, 4)}, params={"value": 2}
        )
        with pytest.raises(CompilationError, match="data race"):
            compile_graph(graph, Execute(compute_set))

    def test_overlapping_reads_allowed(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        source = graph.add_tensor(
            "s", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        out = graph.add_tensor(
            "o", (2,), np.int32, mapping=TileMapping.linear_segments(2, 1, [0, 1])
        )
        compute_set = graph.add_compute_set("reduce")
        reduce = VecReduce("sum")
        for index in range(2):
            compute_set.add_vertex(
                reduce,
                index,
                {
                    "data": ComputeGraph.full(source),
                    "out": ComputeGraph.span(out, index, index + 1),
                },
            )
        compile_graph(graph, Execute(compute_set))  # no error


class TestPlans:
    def test_uniform_compute_set_is_batched(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (8,), np.int32, mapping=TileMapping.linear_segments(8, 2, range(4))
        )
        compute_set = graph.add_compute_set("fill")
        fill = Fill()
        for index in range(4):
            compute_set.add_vertex(
                fill,
                index,
                {"data": ComputeGraph.span(tensor, index * 2, index * 2 + 2)},
                params={"value": index},
            )
        compiled = compile_graph(graph, Execute(compute_set))
        plan = compiled.plan_for(compute_set)
        assert plan.batched
        assert plan.field_plans["data"].contiguous

    def test_mixed_codelets_fall_back(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        compute_set = graph.add_compute_set("mixed")
        compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.span(tensor, 0, 2)}, params={"value": 1}
        )
        compute_set.add_vertex(
            VecReduce("sum"),
            0,
            {
                "data": ComputeGraph.span(tensor, 0, 2),
                "out": ComputeGraph.span(tensor, 2, 3),
            },
        )
        compiled = compile_graph(graph, Execute(compute_set))
        assert not compiled.plan_for(compute_set).batched

    def test_non_uniform_lengths_fall_back(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (5,), np.int32, mapping=TileMapping.single_tile(5)
        )
        compute_set = graph.add_compute_set("uneven")
        fill = Fill()
        compute_set.add_vertex(
            fill, 0, {"data": ComputeGraph.span(tensor, 0, 3)}, params={"value": 1}
        )
        compute_set.add_vertex(
            fill, 1, {"data": ComputeGraph.span(tensor, 3, 5)}, params={"value": 2}
        )
        compiled = compile_graph(graph, Execute(compute_set))
        assert not compiled.plan_for(compute_set).batched

    def test_broadcast_read_detected(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        source = graph.add_tensor(
            "s", (4,), np.int32, mapping=TileMapping.single_tile(4)
        )
        out = graph.add_tensor(
            "o", (2,), np.int32, mapping=TileMapping.linear_segments(2, 1, [0, 1])
        )
        compute_set = graph.add_compute_set("bcast")
        reduce = VecReduce("max")
        for index in range(2):
            compute_set.add_vertex(
                reduce,
                index,
                {
                    "data": ComputeGraph.full(source),
                    "out": ComputeGraph.span(out, index, index + 1),
                },
            )
        compiled = compile_graph(graph, Execute(compute_set))
        plan = compiled.plan_for(compute_set)
        assert plan.field_plans["data"].broadcast
        assert plan.field_plans["out"].contiguous

    def test_exchange_bytes_planned(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (4,), np.int32, mapping=TileMapping.single_tile(4, tile=1)
        )
        compute_set = graph.add_compute_set("remote_fill")
        compute_set.add_vertex(
            Fill(), 0, {"data": ComputeGraph.full(tensor)}, params={"value": 1}
        )
        compiled = compile_graph(graph, Execute(compute_set))
        assert compiled.plan_for(compute_set).exchange_bytes == 16

    def test_worker_slots_round_robin(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (12,), np.int32, mapping=TileMapping.single_tile(12)
        )
        compute_set = graph.add_compute_set("many")
        fill = Fill()
        for index in range(8):
            compute_set.add_vertex(
                fill,
                0,
                {"data": ComputeGraph.span(tensor, index, index + 1)},
                params={"value": index},
            )
        compiled = compile_graph(graph, Execute(compute_set))
        slots = compiled.plan_for(compute_set).worker_slots
        # 8 vertices on one 6-thread tile: slots 0..5 then wrap to 0, 1.
        assert list(slots) == [0, 1, 2, 3, 4, 5, 0, 1]


class TestViewCacheInvalidation:
    """Cached gather views must follow the tensor's buffer, not outlive it.

    Regression tests for the stale-cache bug: aliasing views are cached for
    steady-state speed, keyed on ``Tensor.version`` — rebinding ``.data`` to
    a new array must invalidate them, while in-place writes must not.
    """

    def _contiguous_plan(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "x", (8,), np.int32, mapping=TileMapping.linear_segments(8, 2, range(4))
        )
        compute_set = graph.add_compute_set("fill")
        fill = Fill()
        for index in range(4):
            compute_set.add_vertex(
                fill,
                index,
                {"data": ComputeGraph.span(tensor, index * 2, index * 2 + 2)},
                params={"value": index},
            )
        compiled = compile_graph(graph, Execute(compute_set))
        return tensor, compiled.plan_for(compute_set)

    def test_in_place_write_keeps_cached_view(self, toy_spec):
        tensor, plan = self._contiguous_plan(toy_spec)
        field_plan = plan.field_plans["data"]
        first = field_plan.gather()
        assert np.shares_memory(first, tensor.data)
        tensor.write_host(np.arange(8, dtype=np.int32))
        second = field_plan.gather()
        assert second is first  # same buffer => cache stays valid
        assert second.reshape(-1).tolist() == list(range(8))

    def test_rebinding_buffer_invalidates_gather_cache(self, toy_spec):
        tensor, plan = self._contiguous_plan(toy_spec)
        field_plan = plan.field_plans["data"]
        stale = field_plan.gather()
        old_buffer = tensor.data
        tensor.data = np.full(8, 7, dtype=np.int32)  # rebind, not write
        fresh = field_plan.gather()
        assert fresh is not stale
        assert np.shares_memory(fresh, tensor.data)
        assert not np.shares_memory(fresh, old_buffer)
        assert fresh.reshape(-1).tolist() == [7] * 8

    def test_rebinding_buffer_invalidates_batch_views_cache(self, toy_spec):
        tensor, plan = self._contiguous_plan(toy_spec)
        views, needs_scatter = plan.batch_views()
        assert not needs_scatter  # contiguous field: fully aliased
        cached, _ = plan.batch_views()
        assert cached["data"] is views["data"]
        tensor.data = np.arange(8, dtype=np.int32)
        rebuilt, _ = plan.batch_views()
        assert rebuilt["data"] is not views["data"]
        assert np.shares_memory(rebuilt["data"], tensor.data)
        # Writes through the fresh view land in the live buffer.
        rebuilt["data"][0, 0] = 42
        assert tensor.data[0] == 42

    def test_stale_view_would_have_read_orphaned_buffer(self, toy_spec):
        # Documents exactly what the version key prevents: the old view
        # still points at the orphaned allocation after a rebind.
        tensor, plan = self._contiguous_plan(toy_spec)
        field_plan = plan.field_plans["data"]
        stale = field_plan.gather()
        tensor.data = np.full(8, 9, dtype=np.int32)
        assert not np.shares_memory(stale, tensor.data)
        assert field_plan.gather().reshape(-1).tolist() == [9] * 8
