"""Tests for the IPU hardware spec and its cost conversions."""

import pytest

from repro.ipu.spec import KIB, IPUSpec


class TestMk2Constants:
    """The defaults must match the figures quoted in the paper (§III, §V)."""

    def test_tile_count(self):
        assert IPUSpec.mk2().num_tiles == 1472

    def test_threads_per_tile(self):
        assert IPUSpec.mk2().threads_per_tile == 6

    def test_total_threads(self):
        assert IPUSpec.mk2().total_threads == 8832

    def test_tile_memory(self):
        assert IPUSpec.mk2().tile_memory_bytes == 624 * KIB

    def test_total_memory_about_900_mib(self):
        total = IPUSpec.mk2().total_memory_bytes
        assert 850 * 1024 * 1024 < total < 950 * 1024 * 1024

    def test_clock(self):
        assert IPUSpec.mk2().clock_hz == pytest.approx(1.325e9)


class TestValidation:
    def test_rejects_zero_tiles(self):
        with pytest.raises(ValueError):
            IPUSpec(num_tiles=0)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            IPUSpec(threads_per_tile=0)

    def test_rejects_negative_memory(self):
        with pytest.raises(ValueError):
            IPUSpec(tile_memory_bytes=-1)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            IPUSpec(clock_hz=0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            IPUSpec(exchange_bandwidth_bytes_per_s=0)


class TestCosts:
    def test_cycles_to_seconds(self):
        spec = IPUSpec(clock_hz=1e9)
        assert spec.cycles_to_seconds(1e9) == pytest.approx(1.0)

    def test_exchange_zero_bytes_is_free(self):
        assert IPUSpec.mk2().exchange_seconds(0) == 0.0

    def test_exchange_includes_setup(self):
        spec = IPUSpec.mk2()
        tiny = spec.exchange_seconds(1)
        assert tiny > spec.cycles_to_seconds(spec.exchange_setup_cycles) * 0.99

    def test_exchange_scales_with_bytes(self):
        spec = IPUSpec.mk2()
        small = spec.exchange_seconds(10_000)
        large = spec.exchange_seconds(10_000_000)
        assert large > small

    def test_sync_positive(self):
        assert IPUSpec.mk2().sync_seconds() > 0

    def test_host_io(self):
        spec = IPUSpec(host_io_bandwidth_bytes_per_s=1e9)
        assert spec.host_io_seconds(1e9) == pytest.approx(1.0)
        assert spec.host_io_seconds(0) == 0.0

    def test_toy_spec_is_small(self):
        toy = IPUSpec.toy()
        assert toy.num_tiles < IPUSpec.mk2().num_tiles
        assert toy.tile_memory_bytes < IPUSpec.mk2().tile_memory_bytes
