"""Tests for deep (per-tile) profiling: TileProfile and its accounting.

The deep profiler attributes every compute superstep's cycles to the
physical tiles that executed them.  These tests drive the ``Profiler``
directly with synthetic supersteps (exact control over which tile does
what) and pin the attribution identities: charged vs vertex cycles,
straggler counts, occupancy, the imbalance series, heatmap layout, and
per-tensor exchange attribution.
"""

import numpy as np
import pytest

from repro.ipu.profiler import Profiler
from repro.ipu.spec import IPUSpec


@pytest.fixture
def spec():
    return IPUSpec.toy()


@pytest.fixture
def profiler(spec):
    return Profiler(spec, tiles=True)


def _superstep(profiler, name, tile_ids, tile_cycles, **kwargs):
    tile_ids = np.asarray(tile_ids, dtype=np.int64)
    tile_cycles = np.asarray(tile_cycles, dtype=np.float64)
    return profiler.record_superstep(
        name,
        compute_cycles=float(tile_cycles.max()),
        exchange_bytes=kwargs.pop("exchange_bytes", 0),
        tile_ids=tile_ids,
        tile_cycles=tile_cycles,
        **kwargs,
    )


class TestTileAttribution:
    def test_tiles_flag_implies_detailed(self, spec):
        assert Profiler(spec, detailed=False, tiles=True).detailed

    def test_cycles_attributed_to_the_right_tiles(self, profiler):
        _superstep(profiler, "step1/a", [0, 2], [100.0, 300.0])
        _superstep(profiler, "step1/a", [2, 3], [50.0, 10.0])
        tiles = profiler.report().tiles
        assert tiles.tile_cycles[0] == 100.0
        assert tiles.tile_cycles[2] == 350.0
        assert tiles.tile_cycles[3] == 10.0
        assert tiles.tile_cycles[1] == 0.0
        assert tiles.tiles_used == 3
        assert tiles.supersteps == 2

    def test_charged_vs_vertex_cycles(self, profiler):
        # Charged = per-superstep max; vertex = everything every tile ran.
        _superstep(profiler, "a", [0, 1], [100.0, 300.0])
        tiles = profiler.report().tiles
        assert tiles.compute_cycles == 300.0
        assert tiles.vertex_cycles == 400.0

    def test_straggler_is_the_per_superstep_max_tile(self, profiler):
        _superstep(profiler, "a", [0, 1], [10.0, 90.0])
        _superstep(profiler, "a", [0, 1], [80.0, 20.0])
        _superstep(profiler, "a", [0, 1], [10.0, 70.0])
        tiles = profiler.report().tiles
        assert tiles.tile_straggler_count[1] == 2
        assert tiles.tile_straggler_count[0] == 1
        top = tiles.stragglers(k=1)
        assert top[0]["tile"] == 1
        assert top[0]["straggler_supersteps"] == 2

    def test_active_supersteps_count_participation(self, profiler):
        _superstep(profiler, "a", [0, 1], [1.0, 1.0])
        _superstep(profiler, "a", [0], [1.0])
        tiles = profiler.report().tiles
        assert tiles.tile_active_supersteps[0] == 2
        assert tiles.tile_active_supersteps[1] == 1

    def test_per_name_compute_cycles_match_step_records(self, profiler):
        # The per-compute-set rows accumulate the identical charged-cycle
        # stream as the StepRecords: exact equality, not approx.
        for index in range(7):
            _superstep(profiler, f"step{index % 3}/x", [0, 1], [10.0, 5.0 + index])
        report = profiler.report()
        by_name = {stats.name: stats for stats in report.tiles.compute_sets}
        for record in report.records:
            assert by_name[record.name].compute_cycles == record.compute_cycles
            assert by_name[record.name].executions == record.executions
            assert by_name[record.name].exchange_bytes == record.exchange_bytes


class TestCopySupersteps:
    def test_copy_kept_in_series_but_not_supersteps(self, profiler):
        _superstep(profiler, "step1/a", [0], [10.0])
        charge = profiler.record_superstep(
            "copy/x", compute_cycles=0.0, exchange_bytes=128
        )
        tiles = profiler.report().tiles
        # The series mirrors the engine's superstep timeline (copies
        # included, flagged -1) while `supersteps` stays compute-only.
        assert len(tiles.series) == 2
        assert tiles.supersteps == 1
        copy_sample = tiles.series[1]
        assert copy_sample.straggler_tile == -1
        assert copy_sample.total_seconds == pytest.approx(charge.total_seconds)

    def test_copies_do_not_dilute_imbalance(self, profiler):
        _superstep(profiler, "a", [0, 1], [30.0, 10.0])  # imbalance 1.5
        for _ in range(10):
            profiler.record_superstep("copy/x", 0.0, 64)
        stats = profiler.report().tiles.imbalance_over_time()
        assert stats["mean"] == pytest.approx(1.5)
        assert stats["supersteps"] == 1.0

    def test_copy_exchange_still_counted_per_name(self, profiler):
        profiler.record_superstep("copy/x", 0.0, 100)
        profiler.record_superstep("copy/x", 0.0, 28)
        tiles = profiler.report().tiles
        (row,) = [s for s in tiles.compute_sets if s.name == "copy/x"]
        assert row.exchange_bytes == 128
        assert row.executions == 2


class TestOccupancyAndImbalance:
    def test_occupancy_over_used_tiles_only(self, profiler):
        _superstep(profiler, "a", [0, 1], [100.0, 50.0])
        _superstep(profiler, "a", [0], [100.0])
        occupancy = profiler.report().tiles.occupancy()
        assert occupancy["tiles_used"] == 2.0
        # tile 0 active 2/2, tile 1 active 1/2 -> mean 0.75.
        assert occupancy["mean_active_fraction"] == pytest.approx(0.75)
        # cycles over used tiles: [200, 50] -> max/mean = 200/125.
        assert occupancy["imbalance"] == pytest.approx(200.0 / 125.0)

    def test_empty_profile(self, profiler):
        tiles = profiler.report().tiles
        assert tiles.occupancy() == {
            "tiles_used": 0.0,
            "mean_active_fraction": 0.0,
            "imbalance": 1.0,
        }
        assert tiles.imbalance_over_time() == {
            "mean": 1.0,
            "max": 1.0,
            "supersteps": 0.0,
        }
        assert tiles.stragglers() == []

    def test_imbalance_series_values(self, profiler):
        _superstep(profiler, "a", [0, 1], [40.0, 10.0])  # 40/25 = 1.6
        _superstep(profiler, "a", [0, 1], [30.0, 30.0])  # 1.0
        stats = profiler.report().tiles.imbalance_over_time()
        assert stats["max"] == pytest.approx(1.6)
        assert stats["mean"] == pytest.approx(1.3)
        samples = profiler.report().tiles.series
        assert samples[0].imbalance == pytest.approx(1.6)
        assert samples[0].straggler_tile == 0


class TestHeatmap:
    def test_default_width_is_squarest(self, profiler):
        _superstep(profiler, "a", [0], [5.0])
        grid = profiler.report().tiles.heatmap()
        total = profiler.report().tiles.total_tiles
        assert grid["width"] * grid["rows"] >= total
        assert len(grid["cycles"]) == grid["rows"]
        assert all(len(row) == grid["width"] for row in grid["cycles"])

    def test_explicit_width_and_values(self, profiler):
        _superstep(profiler, "a", [0, 3], [5.0, 7.0])
        grid = profiler.report().tiles.heatmap(width=2)
        flat = [cell for row in grid["cycles"] for cell in row]
        assert flat[0] == 5.0
        assert flat[3] == 7.0
        assert sum(flat) == pytest.approx(12.0)

    def test_grid_total_preserves_vertex_cycles(self, profiler):
        _superstep(profiler, "a", [0, 1, 2], [1.0, 2.0, 3.0])
        tiles = profiler.report().tiles
        grid = tiles.heatmap(width=3)
        flat = [cell for row in grid["cycles"] for cell in row]
        assert sum(flat) == pytest.approx(tiles.vertex_cycles)


class TestExchangeByTensor:
    def test_accumulates_per_tensor_and_per_set(self, profiler):
        _superstep(
            profiler,
            "step6/update",
            [0],
            [10.0],
            exchange_bytes=96,
            exchange_by_tensor={"slack": 64, "theta": 32},
        )
        _superstep(
            profiler,
            "step6/update",
            [0],
            [10.0],
            exchange_bytes=96,
            exchange_by_tensor={"slack": 64, "theta": 32},
        )
        tiles = profiler.report().tiles
        assert tiles.exchange_by_tensor == {"slack": 128, "theta": 64}
        (row,) = [s for s in tiles.compute_sets if s.name == "step6/update"]
        assert row.exchange_by_tensor == {"slack": 128, "theta": 64}
        assert sum(row.exchange_by_tensor.values()) == row.exchange_bytes


class TestResetAndSnapshot:
    def test_reset_clears_tile_state(self, profiler):
        _superstep(profiler, "a", [0], [10.0])
        profiler.reset()
        tiles = profiler.report().tiles
        assert tiles.supersteps == 0
        assert tiles.vertex_cycles == 0.0
        assert len(tiles.series) == 0

    def test_snapshot_is_immutable(self, profiler):
        _superstep(profiler, "a", [0], [10.0])
        tiles = profiler.report().tiles
        _superstep(profiler, "a", [0], [10.0])
        assert tiles.supersteps == 1
        assert tiles.tile_cycles[0] == 10.0

    def test_format_table_renders(self, profiler):
        _superstep(profiler, "a", [0, 1], [10.0, 20.0])
        table = profiler.report().tiles.format_table()
        assert "straggler supersteps" in table
        assert "2 tile(s) used" in table
