"""Tests for the BSP profiler and its report type."""

import pytest

from repro.ipu.profiler import Profiler
from repro.ipu.spec import IPUSpec


@pytest.fixture
def profiler():
    return Profiler(IPUSpec.mk2())


class TestAccumulation:
    def test_superstep_charges_three_phases(self, profiler):
        profiler.record_superstep("step", compute_cycles=1325, exchange_bytes=8000)
        report = profiler.report()
        record = report.record_named("step")
        assert record.compute_seconds == pytest.approx(1e-6)  # 1325 cy @ 1.325GHz
        assert record.sync_seconds > 0
        assert record.exchange_seconds > 0
        assert record.exchange_bytes == 8000
        assert report.supersteps == 1

    def test_aggregation_by_name(self, profiler):
        for _ in range(3):
            profiler.record_superstep("a", 100, 0)
        profiler.record_superstep("b", 100, 0)
        report = profiler.report()
        assert report.record_named("a").executions == 3
        assert report.record_named("b").executions == 1
        assert report.supersteps == 4

    def test_zero_exchange_costs_nothing_on_fabric(self, profiler):
        profiler.record_superstep("a", 100, 0)
        assert profiler.report().record_named("a").exchange_seconds == 0.0

    def test_host_io(self, profiler):
        profiler.record_host_io(32_000_000_000)  # 32 GB at 32 GB/s
        assert profiler.report().host_io_seconds == pytest.approx(1.0)

    def test_report_is_immutable_snapshot(self, profiler):
        profiler.record_superstep("a", 100, 0)
        report = profiler.report()
        profiler.record_superstep("a", 100, 0)
        assert report.record_named("a").executions == 1


class TestReportQueries:
    def test_by_prefix_sums(self, profiler):
        profiler.record_superstep("step4/scan", 1000, 0)
        profiler.record_superstep("step4/final", 2000, 0)
        profiler.record_superstep("step6/update", 5000, 0)
        report = profiler.report()
        step4 = report.by_prefix("step4")
        total = report.device_seconds
        assert 0 < step4 < total
        assert report.by_prefix("step9") == 0.0

    def test_record_named_missing(self, profiler):
        with pytest.raises(KeyError):
            profiler.report().record_named("ghost")

    def test_format_table_lists_heaviest_first(self, profiler):
        profiler.record_superstep("light", 10, 0)
        profiler.record_superstep("heavy", 1_000_000, 0)
        table = profiler.report().format_table()
        assert table.index("heavy") < table.index("light")
        assert "TOTAL" in table

    def test_total_includes_host_io(self, profiler):
        profiler.record_superstep("a", 100, 0)
        profiler.record_host_io(3_200_000)
        report = profiler.report()
        assert report.total_seconds > report.device_seconds
