"""Tests for the BSP profiler and its report type."""

import pytest

from repro.ipu.profiler import Profiler
from repro.ipu.spec import IPUSpec


@pytest.fixture
def profiler():
    return Profiler(IPUSpec.mk2())


class TestAccumulation:
    def test_superstep_charges_three_phases(self, profiler):
        profiler.record_superstep("step", compute_cycles=1325, exchange_bytes=8000)
        report = profiler.report()
        record = report.record_named("step")
        assert record.compute_seconds == pytest.approx(1e-6)  # 1325 cy @ 1.325GHz
        assert record.sync_seconds > 0
        assert record.exchange_seconds > 0
        assert record.exchange_bytes == 8000
        assert report.supersteps == 1

    def test_aggregation_by_name(self, profiler):
        for _ in range(3):
            profiler.record_superstep("a", 100, 0)
        profiler.record_superstep("b", 100, 0)
        report = profiler.report()
        assert report.record_named("a").executions == 3
        assert report.record_named("b").executions == 1
        assert report.supersteps == 4

    def test_zero_exchange_costs_nothing_on_fabric(self, profiler):
        profiler.record_superstep("a", 100, 0)
        assert profiler.report().record_named("a").exchange_seconds == 0.0

    def test_host_io(self, profiler):
        profiler.record_host_io(32_000_000_000)  # 32 GB at 32 GB/s
        assert profiler.report().host_io_seconds == pytest.approx(1.0)

    def test_report_is_immutable_snapshot(self, profiler):
        profiler.record_superstep("a", 100, 0)
        report = profiler.report()
        profiler.record_superstep("a", 100, 0)
        assert report.record_named("a").executions == 1


class TestReportQueries:
    def test_by_prefix_sums(self, profiler):
        profiler.record_superstep("step4/scan", 1000, 0)
        profiler.record_superstep("step4/final", 2000, 0)
        profiler.record_superstep("step6/update", 5000, 0)
        report = profiler.report()
        step4 = report.by_prefix("step4")
        total = report.device_seconds
        assert 0 < step4 < total
        assert report.by_prefix("step9") == 0.0

    def test_record_named_missing(self, profiler):
        with pytest.raises(KeyError):
            profiler.report().record_named("ghost")

    def test_format_table_lists_heaviest_first(self, profiler):
        profiler.record_superstep("light", 10, 0)
        profiler.record_superstep("heavy", 1_000_000, 0)
        table = profiler.report().format_table()
        assert table.index("heavy") < table.index("light")
        assert "TOTAL" in table

    def test_total_includes_host_io(self, profiler):
        profiler.record_superstep("a", 100, 0)
        profiler.record_host_io(3_200_000)
        report = profiler.report()
        assert report.total_seconds > report.device_seconds


class TestInvariants:
    """The accounting identities the trace exporter relies on."""

    def test_device_seconds_is_sum_of_record_totals(self, profiler):
        for index in range(20):
            profiler.record_superstep(f"step{index % 6 + 1}/x", 100 * index, index)
        report = profiler.report()
        assert report.device_seconds == pytest.approx(
            sum(record.total_seconds for record in report.records)
        )

    def test_by_prefix_partitions_device_seconds(self, profiler):
        profiler.record_superstep("step6/partial", 1000, 64)
        profiler.record_superstep("step6/final", 2000, 0)
        profiler.record_superstep("step4/scan", 500, 0)
        report = profiler.report()
        assert report.by_prefix("step6") == pytest.approx(
            report.record_named("step6/partial").total_seconds
            + report.record_named("step6/final").total_seconds
        )
        assert report.by_prefix("step6") + report.by_prefix("step4") == (
            pytest.approx(report.device_seconds)
        )

    def test_supersteps_equal_execution_sum(self, profiler):
        for _ in range(3):
            profiler.record_superstep("a", 10, 0)
        profiler.record_superstep("b", 10, 0)
        report = profiler.report()
        assert report.supersteps == sum(r.executions for r in report.records)

    def test_record_superstep_returns_the_charge(self, profiler):
        charge = profiler.record_superstep("a", 1325, 8000)
        record = profiler.report().record_named("a")
        assert charge.compute_seconds == pytest.approx(record.compute_seconds)
        assert charge.sync_seconds == pytest.approx(record.sync_seconds)
        assert charge.exchange_seconds == pytest.approx(record.exchange_seconds)
        assert charge.total_seconds == pytest.approx(record.total_seconds)


class TestSummary:
    def test_rows_sorted_by_total_descending(self, profiler):
        profiler.record_superstep("light", 10, 0)
        profiler.record_superstep("heavy", 1_000_000, 0)
        profiler.record_superstep("middle", 10_000, 0)
        rows = profiler.report().summary()
        assert [row["name"] for row in rows] == ["heavy", "middle", "light"]
        totals = [row["total_seconds"] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_pct_of_device_sums_to_100(self, profiler):
        profiler.record_superstep("a", 500, 64)
        profiler.record_superstep("b", 1500, 0)
        rows = profiler.report().summary()
        assert sum(row["pct_of_device"] for row in rows) == pytest.approx(100.0)
        assert all(row["pct_of_device"] > 0 for row in rows)

    def test_row_fields(self, profiler):
        profiler.record_superstep("a", 1325, 4096)
        (row,) = profiler.report().summary()
        record = profiler.report().record_named("a")
        assert row["executions"] == 1
        assert row["compute_seconds"] == pytest.approx(record.compute_seconds)
        assert row["exchange_bytes"] == 4096
        assert row["pct_of_device"] == pytest.approx(100.0)

    def test_format_table_has_percent_column(self, profiler):
        profiler.record_superstep("a", 100, 0)
        table = profiler.report().format_table()
        assert "% dev" in table
        assert "100.0%" in table

    def test_empty_report(self, profiler):
        assert profiler.report().summary() == []


class TestCriticalPath:
    def test_groups_by_step_prefix(self, profiler):
        profiler.record_superstep("step4/scan", 1000, 0)
        profiler.record_superstep("step4/final", 2000, 0)
        profiler.record_superstep("step6/update", 500, 0)
        profiler.record_superstep("mystery/op", 100, 0)
        analysis = profiler.report().critical_path()
        report = profiler.report()
        assert analysis["steps"]["step4"]["total"] == pytest.approx(
            report.by_prefix("step4")
        )
        assert analysis["steps"]["other"]["total"] == pytest.approx(
            report.record_named("mystery/op").total_seconds
        )

    def test_bounding_step_and_phase(self, profiler):
        # One huge compute superstep: step5 must bound the run, and its
        # group must be compute-dominated.
        profiler.record_superstep("step5/augment", 10_000_000, 0)
        profiler.record_superstep("step1/rows", 10, 0)
        analysis = profiler.report().critical_path()
        assert analysis["bounding_step"] == "step5"
        assert analysis["bounding_phase"] == "compute"
        assert analysis["dominant_phase"] == "compute"

    def test_sync_bound_when_compute_is_tiny(self, profiler):
        # Many near-empty supersteps: fixed sync dominates (the small-n
        # regime the paper's scaling argument starts from).
        for _ in range(50):
            profiler.record_superstep("step3/cover", 1, 0)
        analysis = profiler.report().critical_path()
        assert analysis["dominant_phase"] == "sync"
        assert analysis["bounding_phase"] == "sync"

    def test_shares_sum_to_one(self, profiler):
        profiler.record_superstep("step1/a", 100, 64)
        profiler.record_superstep("step2/b", 200, 0)
        analysis = profiler.report().critical_path()
        assert sum(g["share"] for g in analysis["steps"].values()) == (
            pytest.approx(1.0)
        )

    def test_phase_seconds_matches_report(self, profiler):
        profiler.record_superstep("step1/a", 100, 64)
        report = profiler.report()
        analysis = report.critical_path()
        assert analysis["phase_seconds"] == report.phase_seconds
        assert sum(analysis["phase_seconds"].values()) == pytest.approx(
            report.device_seconds
        )

    def test_format_mentions_bounding_step(self, profiler):
        profiler.record_superstep("step4/scan", 1_000_000, 0)
        text = profiler.report().format_critical_path()
        assert "bounded by step4" in text
        assert "dominant phase" in text


class TestNamedLookup:
    def test_contains_and_get(self, profiler):
        profiler.record_superstep("step1/a", 100, 0)
        report = profiler.report()
        assert "step1/a" in report
        assert "ghost" not in report
        assert report.get("step1/a").executions == 1
        assert report.get("ghost") is None
        sentinel = report.record_named("step1/a")
        assert report.get("ghost", sentinel) is sentinel

    def test_lookup_is_indexed_not_scanned(self, profiler):
        # The index must be a dict keyed by name (O(1) lookups), built
        # lazily and cached on the immutable report.
        profiler.record_superstep("a", 1, 0)
        profiler.record_superstep("b", 1, 0)
        report = profiler.report()
        report.record_named("a")
        index = report._by_name
        assert isinstance(index, dict)
        assert report._by_name is index  # cached, not rebuilt
        assert set(index) == {"a", "b"}
