"""Tests for the SIMT kernel-execution model."""

import pytest

from repro.errors import GPUSimulationError
from repro.gpu.simt import GPUDevice
from repro.gpu.spec import GPUSpec


class TestSpec:
    def test_a100_constants(self):
        spec = GPUSpec.a100()
        assert spec.sm_count == 108
        assert spec.warp_size == 32
        assert spec.vram_bytes == 40 * 1024**3

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            GPUSpec(sm_count=0)
        with pytest.raises(ValueError):
            GPUSpec(clock_hz=0)

    def test_compute_seconds_scale_with_divergence(self):
        spec = GPUSpec.a100()
        base = spec.compute_seconds(1e6)
        divergent = spec.compute_seconds(1e6, divergence=2.0)
        assert divergent == pytest.approx(2 * base)

    def test_memory_seconds_bandwidth(self):
        spec = GPUSpec(global_bandwidth_bytes_per_s=1e12)
        assert spec.memory_seconds(1e12) == pytest.approx(1.0)

    def test_uncoalesced_penalty(self):
        spec = GPUSpec.a100()
        assert spec.memory_seconds(1e6, coalesced=False) > spec.memory_seconds(1e6)

    def test_zero_work_is_free(self):
        spec = GPUSpec.a100()
        assert spec.compute_seconds(0) == 0.0
        assert spec.memory_seconds(0) == 0.0


class TestMemoryManagement:
    def test_malloc_free_cycle(self):
        device = GPUDevice()
        device.malloc("buf", 1024)
        assert device.allocated_bytes == 1024
        device.free("buf")
        assert device.allocated_bytes == 0

    def test_out_of_memory(self):
        device = GPUDevice(GPUSpec(vram_bytes=100))
        with pytest.raises(GPUSimulationError, match="out of device memory"):
            device.malloc("huge", 200)

    def test_double_alloc_rejected(self):
        device = GPUDevice()
        device.malloc("buf", 10)
        with pytest.raises(GPUSimulationError, match="already allocated"):
            device.malloc("buf", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(GPUSimulationError, match="not allocated"):
            GPUDevice().free("ghost")

    def test_negative_alloc_rejected(self):
        with pytest.raises(GPUSimulationError):
            GPUDevice().malloc("neg", -1)


class TestLaunchAccounting:
    def test_launch_overhead_always_charged(self):
        device = GPUDevice()
        device.launch("noop")
        profile = device.profile()
        assert profile.device_seconds >= device.spec.kernel_launch_s

    def test_roofline_takes_max_of_compute_and_memory(self):
        spec = GPUSpec.a100()
        device = GPUDevice(spec)
        device.launch("memory_bound", elements=1, bytes_read=1e9)
        record = device.profile().record_named("memory_bound")
        assert record.total_seconds == pytest.approx(
            spec.kernel_launch_s + spec.memory_seconds(1e9)
        )

    def test_launches_aggregate_per_kernel(self):
        device = GPUDevice()
        device.launch("k", elements=10)
        device.launch("k", elements=10)
        profile = device.profile()
        assert profile.record_named("k").launches == 2
        assert profile.kernel_launches == 2

    def test_host_sync_charged(self):
        device = GPUDevice()
        device.host_sync()
        device.host_sync()
        profile = device.profile()
        assert profile.host_syncs == 2
        assert profile.sync_seconds == pytest.approx(2 * device.spec.host_sync_s)

    def test_divergence_below_one_rejected(self):
        with pytest.raises(GPUSimulationError):
            GPUDevice().launch("bad", elements=1, divergence=0.5)

    def test_profile_is_snapshot(self):
        device = GPUDevice()
        device.launch("k", elements=1)
        snapshot = device.profile()
        device.launch("k", elements=1)
        assert snapshot.record_named("k").launches == 1

    def test_format_table_contains_kernels(self):
        device = GPUDevice()
        device.launch("alpha", elements=5)
        device.host_sync()
        table = device.profile().format_table()
        assert "alpha" in table
        assert "host syncs" in table

    def test_record_named_missing(self):
        with pytest.raises(KeyError):
            GPUDevice().profile().record_named("nope")
