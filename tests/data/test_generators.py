"""Tests for the synthetic and real-dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.real import TABLE1_DATASETS, load_dataset, table1_rows
from repro.data.synthetic import (
    FIGURE5_K_VALUES,
    PAPER_K_VALUES,
    PAPER_SIZES,
    gaussian_cost_matrix,
    gaussian_instance,
    uniform_cost_matrix,
    uniform_instance,
)
from repro.errors import InvalidProblemError


class TestPaperGrids:
    def test_sizes(self):
        assert PAPER_SIZES == (512, 1024, 2048, 4096, 8192)

    def test_k_values(self):
        assert PAPER_K_VALUES == (1, 10, 100, 500, 1000, 5000, 10000)
        assert set(FIGURE5_K_VALUES) <= set(PAPER_K_VALUES)


class TestGaussian:
    @settings(max_examples=20, deadline=None)
    @given(
        size=st.integers(4, 64),
        k=st.sampled_from([1, 10, 100]),
        seed=st.integers(0, 1000),
    )
    def test_values_in_paper_range(self, size, k, seed):
        matrix = gaussian_cost_matrix(size, k, np.random.default_rng(seed))
        assert matrix.shape == (size, size)
        assert matrix.min() >= 1.0
        assert matrix.max() <= k * size

    def test_moments_match_recipe(self):
        size, k = 256, 100
        matrix = gaussian_cost_matrix(size, k, np.random.default_rng(0))
        top = k * size
        assert matrix.mean() == pytest.approx(top / 2, rel=0.02)
        assert matrix.std() == pytest.approx(top / 6, rel=0.05)

    def test_rejects_bad_args(self):
        gen = np.random.default_rng(0)
        with pytest.raises(InvalidProblemError):
            gaussian_cost_matrix(0, 1, gen)
        with pytest.raises(InvalidProblemError):
            gaussian_cost_matrix(4, 0, gen)

    def test_instance_deterministic_by_seed(self):
        a = gaussian_instance(16, 10, seed=5)
        b = gaussian_instance(16, 10, seed=5)
        c = gaussian_instance(16, 10, seed=6)
        assert np.array_equal(a.costs, b.costs)
        assert not np.array_equal(a.costs, c.costs)
        assert "n16" in a.name


class TestUniform:
    def test_range(self):
        matrix = uniform_cost_matrix(32, 10, np.random.default_rng(0))
        assert matrix.min() >= 1.0
        assert matrix.max() <= 320.0

    def test_instance_named(self):
        assert uniform_instance(8, 1).name.startswith("unif-")


class TestRealStandIns:
    def test_table1_counts_exact(self):
        for row in table1_rows():
            assert row["n"] == row["paper_n"]
            assert row["m"] == row["paper_m"]

    @pytest.mark.parametrize("spec", TABLE1_DATASETS, ids=lambda s: s.name)
    def test_each_dataset_loads_with_exact_counts(self, spec):
        graph = load_dataset(spec.name)
        assert graph.number_of_nodes() == spec.nodes
        assert graph.number_of_edges() == spec.edges
        assert graph.graph["network_type"] == spec.network_type

    def test_generation_deterministic(self):
        a = load_dataset("Voles")
        b = load_dataset("Voles")
        assert set(a.edges) == set(b.edges)

    def test_nodes_are_contiguous_integers(self):
        graph = load_dataset("HighSchool")
        assert sorted(graph.nodes) == list(range(graph.number_of_nodes()))

    def test_scaling_shrinks_proportionally(self):
        graph = load_dataset("MultiMagna", scale=0.5)
        assert graph.number_of_nodes() == 502
        assert graph.number_of_edges() == round(8323 * 0.5)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(InvalidProblemError, match="unknown dataset"):
            load_dataset("Facebook")

    def test_bad_scale_rejected(self):
        with pytest.raises(InvalidProblemError):
            load_dataset("Voles", scale=0.0)

    def test_case_insensitive_lookup(self):
        assert load_dataset("voles").graph["name"] == "Voles"

    def test_biological_graph_degree_heterogeneous(self):
        """MultiMagna's PPI-like surrogate should have hub nodes."""
        graph = load_dataset("MultiMagna")
        degrees = np.array([d for _, d in graph.degree()])
        assert degrees.max() > 4 * degrees.mean()
