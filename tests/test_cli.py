"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_experiments_enumerated(self):
        args = build_parser().parse_args(["run", "table2", "--scale", "quick"])
        assert args.experiment == "table2"
        assert args.scale == "quick"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.size == 128
        assert args.solver == "hunipu"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "1472 tiles" in out
        assert "a100" in out

    @pytest.mark.parametrize("solver", ["hunipu", "cpu", "date-nagi", "lapjv", "scipy"])
    def test_solve_each_solver(self, capsys, solver):
        assert main(["solve", "--size", "12", "--k", "5", "--solver", solver]) == 0
        out = capsys.readouterr().out
        assert "optimal cost" in out

    def test_solve_fastha_pads_non_power_of_two(self, capsys):
        assert main(["solve", "--size", "12", "--solver", "fastha"]) == 0
        assert "fastha" in capsys.readouterr().out

    def test_solve_uniform(self, capsys):
        assert main(["solve", "--size", "10", "--distribution", "uniform"]) == 0
        assert "uniform" in capsys.readouterr().out

    def test_run_table1(self, capsys, tmp_path):
        assert main(["run", "table1", "--scale", "quick",
                     "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.txt").exists()

    def test_run_table2_quick(self, capsys):
        assert main(["run", "table2", "--scale", "quick"]) == 0
        assert "Table II" in capsys.readouterr().out


class TestCheckCommand:
    def test_check_defaults_parse(self):
        args = build_parser().parse_args(["check"])
        assert args.size is None
        assert args.headroom == 0.0
        assert not args.strict_warnings

    def test_check_passes_on_solver_graphs(self, capsys, tmp_path):
        report_path = tmp_path / "check.json"
        assert main(["check", "--size", "8",
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "hunipu n=8 (compressed)" in out
        assert "OK" in out
        document = json.loads(report_path.read_text())
        assert document["schema"] == "repro.check/1"
        assert document["ok"] is True

    def test_check_no_batch_skips_batch_path(self, capsys):
        assert main(["check", "--size", "8", "--no-batch"]) == 0
        assert "batch-path" not in capsys.readouterr().out


class TestSolveBatch:
    @pytest.fixture()
    def batch_file(self, tmp_path, rng):
        path = tmp_path / "stream.npy"
        np.save(path, rng.uniform(0, 9, (3, 8, 8)))
        return path

    def test_batch_solves_stream(self, capsys, batch_file):
        assert main(["solve", "--batch", str(batch_file)]) == 0
        out = capsys.readouterr().out
        assert "3 instance(s)" in out
        assert "stream[2]" in out
        assert "throughput" in out

    def test_batch_with_generic_solver(self, capsys, batch_file):
        assert main(["solve", "--batch", str(batch_file),
                     "--solver", "scipy"]) == 0
        assert "group n=8" in capsys.readouterr().out

    def test_batch_json_mixed_sizes(self, capsys, tmp_path, rng):
        payload = {
            "instances": [
                {"name": "a", "costs": rng.uniform(0, 5, (4, 4)).tolist()},
                {"name": "b", "costs": rng.uniform(0, 5, (6, 6)).tolist()},
            ]
        }
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(payload))
        assert main(["solve", "--batch", str(path), "--solver", "scipy"]) == 0
        out = capsys.readouterr().out
        assert "2 group(s)" in out

    def test_batch_rejects_trace(self, capsys, batch_file, tmp_path):
        assert main(["solve", "--batch", str(batch_file),
                     "--trace", str(tmp_path / "t.json")]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_run_batch_experiment_enumerated(self):
        args = build_parser().parse_args(["run", "batch", "--scale", "quick"])
        assert args.experiment == "batch"


class TestServeCommand:
    def test_serve_defaults_parse(self):
        args = build_parser().parse_args(["serve"])
        assert args.requests == 200
        assert args.workers == 4
        assert args.mode == "closed"
        assert not args.verify
        assert args.stats is None

    def test_serve_stats_schema_and_exit_code(self, capsys, tmp_path):
        stats_path = tmp_path / "serve.json"
        assert main([
            "serve", "--requests", "10", "--workers", "2",
            "--shapes", "6", "--shapes", "8", "--seed", "0",
            "--verify", "--stats", str(stats_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "lost          : 0" in out
        assert "checked against scipy, all optimal" in out
        document = json.loads(stats_path.read_text())
        assert document["schema"] == "repro.serve/1"
        requests = document["requests"]
        accounted = (
            requests["completed"]
            + sum(requests["rejected"].values())
            + requests["in_flight"]
        )
        assert requests["submitted"] == accounted
        from repro.obs.export import validate_document

        validate_document(document)

    def test_serve_fault_injection_exercises_fallbacks(self, capsys, tmp_path):
        stats_path = tmp_path / "faulty.json"
        assert main([
            "serve", "--requests", "12", "--workers", "2",
            "--shapes", "6", "--seed", "1",
            "--inject-faults", "1.0",  # every engine run faults
            "--verify", "--expect-fallbacks", "--stats", str(stats_path),
        ]) == 0
        document = json.loads(stats_path.read_text())
        assert sum(document["fallbacks"].values()) > 0
        assert document["requests"]["degraded"] > 0

    def test_serve_expect_fallbacks_fails_without_faults(self, capsys):
        assert main([
            "serve", "--requests", "4", "--workers", "1",
            "--shapes", "6", "--expect-fallbacks",
        ]) == 1
        assert "degradation path never exercised" in capsys.readouterr().err

    def test_serve_usage_errors(self, capsys):
        assert main(["serve", "--requests", "0"]) == 2
        assert main(["serve", "--inject-faults", "1.5"]) == 2

    def test_run_serve_experiment_enumerated(self):
        args = build_parser().parse_args(["run", "serve", "--scale", "quick"])
        assert args.experiment == "serve"

    def test_serve_span_and_prom_exports(self, capsys, tmp_path):
        spans_path = tmp_path / "spans.json"
        prom_path = tmp_path / "metrics.prom"
        stats_path = tmp_path / "stats.json"
        assert main([
            "serve", "--requests", "8", "--workers", "2",
            "--shapes", "6", "--seed", "0",
            "--stats", str(stats_path), "--stats-interval", "0.05",
            "--spans", str(spans_path), "--prom", str(prom_path),
        ]) == 0
        from repro.obs.export import validate_document

        spans_document = json.loads(spans_path.read_text())
        assert validate_document(spans_document) == "repro.spans/1"
        roots = [s for s in spans_document["spans"] if s["parent_id"] is None]
        assert roots and all(
            r["correlation_id"].startswith("req-") for r in roots
        )
        text = prom_path.read_text()
        assert text.endswith("\n")
        assert "# TYPE serve_completed counter" in text
        # The background writer refreshed the stats file during the run.
        validate_document(json.loads(stats_path.read_text()))

    def test_serve_stats_interval_requires_stats(self, capsys):
        assert main(["serve", "--requests", "4",
                     "--stats-interval", "0.1"]) == 2
        assert "--stats" in capsys.readouterr().err


class TestTraceCommand:
    def test_live_trace_exports_validate(self, capsys, tmp_path):
        perfetto_path = tmp_path / "timeline.json"
        spans_path = tmp_path / "spans.json"
        assert main([
            "trace", "--size", "12", "--seed", "3",
            "--perfetto", str(perfetto_path), "--spans", str(spans_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out
        from repro.obs.export import validate_document, validate_perfetto

        perfetto = json.loads(perfetto_path.read_text())
        validate_perfetto(perfetto)
        assert perfetto["traceEvents"]
        # Both request spans (pid 1) and superstep slices (pid 2) are there.
        pids = {
            e["pid"] for e in perfetto["traceEvents"] if e.get("ph") == "X"
        }
        assert pids == {1, 2}
        spans_document = json.loads(spans_path.read_text())
        assert validate_document(spans_document) == "repro.spans/1"

    def test_convert_existing_trace(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        perfetto_path = tmp_path / "perfetto.json"
        assert main(["solve", "--size", "12",
                     "--trace", str(trace_path)]) == 0
        assert main(["trace", "--convert", str(trace_path),
                     "--perfetto", str(perfetto_path)]) == 0
        document = json.loads(perfetto_path.read_text())
        assert document["traceEvents"]

    def test_usage_errors(self, capsys):
        assert main(["trace", "--size", "8"]) == 2  # no output requested
        assert main(["trace", "--convert", "x.json",
                     "--spans", "s.json"]) == 2  # spans need a live solve


class TestProfileCommand:
    def test_prints_tables_and_diagnostics(self, capsys):
        assert main(["profile", "--size", "12", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "compute set" in out
        assert "% dev" in out
        assert "bounded by" in out  # the critical-path verdict
        assert "diagnostics" in out

    def test_tiles_flag_prints_straggler_table(self, capsys):
        assert main(["profile", "--size", "12", "--seed", "2", "--tiles"]) == 0
        out = capsys.readouterr().out
        assert "straggler supersteps" in out
        assert "tile(s) used" in out

    def test_tiles_json_embeds_valid_tile_document(self, capsys, tmp_path):
        from repro.obs.export import validate_document

        path = tmp_path / "prof.json"
        assert main(["profile", "--size", "12", "--seed", "2",
                     "--tiles", "--json", str(path)]) == 0
        document = json.loads(path.read_text())
        tile_document = document["tiles"]
        assert validate_document(tile_document) == "repro.tile-profile/1"
        # Per-tile compute cycles must re-sum to the aggregate profiler's
        # charged total (the acceptance criterion's exactness check).
        assert tile_document["compute_cycles"] == (
            document["profile"]["compute_cycles"]
        )
        assert sum(
            s["compute_cycles"] for s in tile_document["compute_sets"]
        ) == pytest.approx(document["profile"]["compute_cycles"], rel=1e-12)

    def test_heatmap_output_validates(self, capsys, tmp_path):
        from repro.obs.export import validate_document

        path = tmp_path / "heat.json"
        assert main(["profile", "--size", "12", "--seed", "2",
                     "--heatmap", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tile heatmap written" in out
        document = json.loads(path.read_text())
        assert validate_document(document) == "repro.tile-profile/1"
        assert document["heatmap"]["cycles"]

    def test_json_without_tiles_has_no_tile_document(self, capsys, tmp_path):
        path = tmp_path / "prof.json"
        assert main(["profile", "--size", "12", "--seed", "2",
                     "--json", str(path)]) == 0
        assert "tiles" not in json.loads(path.read_text())


class TestPerfCommand:
    def _record(self, store, extra=()):
        return main(["perf", "record", "--store", str(store),
                     "--rounds", "1", *extra])

    def test_record_creates_valid_store(self, capsys, tmp_path):
        from repro.obs.export import validate_document

        store = tmp_path / "trends.json"
        assert self._record(store) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        document = json.loads(store.read_text())
        assert validate_document(document) == "repro.perf/1"
        assert document["runs"]

    def test_unchanged_compare_passes(self, capsys, tmp_path):
        store = tmp_path / "trends.json"
        assert self._record(store) == 0
        assert main(["perf", "compare", "--store", str(store),
                     "--rounds", "1"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_slowdown_fails(self, capsys, tmp_path):
        # The acceptance criterion: a synthetic 2x slowdown must exit
        # non-zero while the unchanged re-run (above) passes.
        store = tmp_path / "trends.json"
        assert self._record(store) == 0
        assert main(["perf", "compare", "--store", str(store),
                     "--rounds", "1", "--inject-slowdown", "2"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "REGRESSION" in out

    def test_budget_ratio_widens_wall_bands(self, capsys, tmp_path):
        store = tmp_path / "trends.json"
        assert self._record(store) == 0
        assert main(["perf", "compare", "--store", str(store), "--rounds", "1",
                     "--inject-slowdown", "2", "--budget-ratio", "50"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_against_empty_store_passes(self, capsys, tmp_path):
        store = tmp_path / "empty.json"
        assert main(["perf", "compare", "--store", str(store),
                     "--rounds", "1"]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_report_shows_trend(self, capsys, tmp_path):
        store = tmp_path / "trends.json"
        assert self._record(store) == 0
        capsys.readouterr()
        assert main(["perf", "report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "solve/n16" in out
        assert "run(s)" in out

    def test_report_empty_store(self, capsys, tmp_path):
        assert main(["perf", "report",
                     "--store", str(tmp_path / "none.json")]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_record_with_ingest(self, capsys, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({
            "schema": "repro.bench-run/1",
            "experiment": "batch",
            "scale": "quick",
            "environment": {},
            "records": [{
                "experiment": "batch", "solver": "hunipu-batch",
                "params": {"n": 16}, "device_time_s": 4e-4,
                "wall_time_s": 0.06, "extra": {},
            }],
            "shape_notes": [],
        }))
        store = tmp_path / "trends.json"
        assert self._record(store, ["--ingest", str(bench)]) == 0
        document = json.loads(store.read_text())
        names = [run["benchmark"] for run in document["runs"]]
        assert "bench/batch/hunipu-batch" in names


class TestStatsCommand:
    def test_prometheus_output(self, capsys):
        assert main(["stats", "--size", "8", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "solver_solves" in out

    def test_json_output(self, capsys):
        assert main(["stats", "--size", "8", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.metrics/1"

    def test_input_document(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["stats", "--size", "8", "--format", "json"]) == 0
        path.write_text(capsys.readouterr().out)
        assert main(["stats", "--input", str(path),
                     "--format", "prom"]) == 0
        assert "solver_solves" in capsys.readouterr().out

    def test_input_rejects_wrong_schema(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.serve/1"}))
        assert main(["stats", "--input", str(path)]) == 2
        assert "repro.metrics/1" in capsys.readouterr().err


class TestTopCommand:
    def test_once_renders_frame(self, capsys, tmp_path):
        stats_path = tmp_path / "stats.json"
        assert main([
            "serve", "--requests", "6", "--workers", "2",
            "--shapes", "6", "--seed", "0", "--stats", str(stats_path),
        ]) == 0
        capsys.readouterr()
        assert main(["top", str(stats_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "requests" in out

    def test_missing_file_fails(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "nope.json"),
                     "--once"]) == 1


class TestValidateCommand:
    def test_validate_ok_and_failure_exit_codes(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        assert main(["solve", "--size", "8", "--trace", str(good)]) == 0
        capsys.readouterr()
        assert main(["validate", str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.trace/999"}))
        assert main(["validate", str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "OK" in captured.out
        assert "FAIL" in captured.err
        assert "unknown schema" in captured.err

    def test_validate_trace_event_document(self, capsys, tmp_path):
        path = tmp_path / "perfetto.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
        ]}))
        assert main(["validate", str(path)]) == 0
        assert "trace-event" in capsys.readouterr().out

    def test_validate_unreadable_file(self, capsys, tmp_path):
        missing = tmp_path / "missing.json"
        assert main(["validate", str(missing)]) == 1
        assert "FAIL" in capsys.readouterr().err
