"""Tests for the batched multi-instance solving engine (repro.batch)."""

import dataclasses

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.batch import BatchSolver, GroupReport, choose_target, pad_instance_costs
from repro.batch.solver import _restrict_result
from repro.baselines import ScipySolver
from repro.core.solver import HunIPUSolver
from repro.errors import SolverError
from repro.lap.problem import LAPInstance
from repro.lap.validation import check_optimality
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _oracle_cost(instance: LAPInstance) -> float:
    rows, cols = linear_sum_assignment(instance.costs)
    return float(instance.costs[rows, cols].sum())


class TestChooseTarget:
    def test_cached_size_never_pads(self):
        assert choose_target(8, cached=frozenset({8, 10})) == 8

    def test_pads_up_to_cached_shape(self):
        assert choose_target(7, cached=frozenset({8})) == 7 + 1

    def test_never_pads_down(self):
        assert choose_target(9, cached=frozenset({8})) == 9

    def test_candidate_exactly_at_limit_is_admitted(self):
        # Regression: 20 * 1.15 == 22.999999999999996 in binary floating
        # point, so a cached size-23 engine — exactly at the padding limit
        # — was rejected and the request recompiled its own graph.
        assert choose_target(20, cached=frozenset({23}), pad_limit=1.15) == 23

    @pytest.mark.parametrize(
        "size,pad_limit",
        [(20, 1.15), (8, 1.25), (40, 1.1), (100, 1.03), (64, 1.25)],
    )
    def test_exact_boundary_is_always_admitted(self, size, pad_limit):
        # For any boundary that is exactly an integer, the candidate at
        # size * pad_limit must be admitted regardless of float rounding.
        from fractions import Fraction

        boundary = Fraction(size) * Fraction(str(pad_limit))
        assert boundary.denominator == 1, "test wants an exact-integer boundary"
        candidate = int(boundary)
        assert choose_target(
            size, cached=frozenset({candidate}), pad_limit=pad_limit
        ) == candidate
        # ...and the next integer above the boundary must still be rejected.
        assert choose_target(
            size, cached=frozenset({candidate + 1}), pad_limit=pad_limit
        ) == size

    def test_popular_size_attracts_padding(self):
        counts = {8: 1, 9: 5}
        assert choose_target(8, cached=frozenset(), counts=counts) == 9


class TestPadInstanceCosts:
    def test_noop_at_same_size(self, rng):
        costs = rng.normal(size=(5, 5))
        assert pad_instance_costs(costs, 5) is costs

    def test_rejects_shrinking(self, rng):
        with pytest.raises(SolverError, match="pad size"):
            pad_instance_costs(rng.normal(size=(5, 5)), 4)

    def test_blocks(self, rng):
        costs = rng.normal(size=(4, 4))
        padded = pad_instance_costs(costs, 7)
        assert padded.shape == (7, 7)
        np.testing.assert_array_equal(padded[:4, :4], costs)
        assert (padded[4:, 4:] == 0).all()
        # Off-diagonal blocks strictly exceed every real entry AND zero, so
        # crossings into the padding block are never optimal.
        pad = padded[0, 4]
        assert (padded[:4, 4:] == pad).all()
        assert (padded[4:, :4] == pad).all()
        assert pad > max(float(costs.max()), 0.0)

    def test_pad_exceeds_max_at_huge_magnitude(self, rng):
        costs = rng.normal(size=(4, 4)) * 1e16
        padded = pad_instance_costs(costs, 6)
        assert padded[:4, 4:].min() > float(costs.max())

    def test_pad_positive_for_negative_costs(self, rng):
        costs = -np.abs(rng.normal(size=(4, 4))) - 100.0
        padded = pad_instance_costs(costs, 6)
        assert padded[0, 4] > 0.0

    @pytest.mark.parametrize("offset", [0.0, -50.0, 1e12])
    def test_padded_optimum_restricts_exactly(self, rng, offset):
        costs = rng.normal(size=(5, 5)) * 3.0 + offset
        padded = pad_instance_costs(costs, 8)
        rows, cols = linear_sum_assignment(padded)
        head = cols[np.argsort(rows)][:5]
        assert (head < 5).all()
        assert float(padded[np.arange(5), head].sum()) == pytest.approx(
            _oracle_cost(LAPInstance(costs)), rel=1e-12
        )


class TestGroupingPolicy:
    def test_groups_by_size(self, toy_spec, rng):
        solver = BatchSolver(HunIPUSolver(toy_spec), pad_to_cached=False)
        instances = [
            LAPInstance(rng.uniform(0, 5, (n, n))) for n in (6, 9, 6, 9, 6)
        ]
        result = solver.solve_batch(instances)
        assert [(g.size, g.instances) for g in result.groups] == [(6, 3), (9, 2)]
        assert all(g.padded == 0 for g in result.groups)

    def test_pads_to_cached_size(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        hunipu.compiled_for(8)
        result = BatchSolver(hunipu).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (7, 7))) for _ in range(3)]
        )
        assert [(g.size, g.padded) for g in result.groups] == [(8, 3)]
        assert set(hunipu._compiled) == {8}

    def test_pads_minority_to_majority_size(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        sizes = [8, 8, 8, 7]
        result = BatchSolver(hunipu).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (n, n))) for n in sizes]
        )
        assert [(g.size, g.instances, g.padded) for g in result.groups] == [
            (8, 4, 1)
        ]
        assert set(hunipu._compiled) == {8}

    def test_respects_pad_limit(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        hunipu.compiled_for(16)
        # 9 * 1.25 < 16, so 9 must NOT be padded up to the cached 16.
        result = BatchSolver(hunipu).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (9, 9)))]
        )
        assert [(g.size, g.padded) for g in result.groups] == [(9, 0)]

    def test_cached_sizes_never_pad(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        hunipu.compiled_for(7)
        hunipu.compiled_for(8)
        result = BatchSolver(hunipu).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (7, 7)))]
        )
        assert [(g.size, g.padded) for g in result.groups] == [(7, 0)]

    def test_pad_to_cached_off_disables_padding(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        hunipu.compiled_for(8)
        result = BatchSolver(hunipu, pad_to_cached=False).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (7, 7)))]
        )
        assert [(g.size, g.padded) for g in result.groups] == [(7, 0)]

    def test_rejects_bad_pad_limit(self, toy_spec):
        with pytest.raises(SolverError, match="pad_limit"):
            BatchSolver(HunIPUSolver(toy_spec), pad_limit=0.5)


class TestFastPath:
    def test_bit_identical_to_sequential_solves(self, toy_spec, rng):
        instances = [
            LAPInstance(rng.normal(size=(8, 8)) * 10 - 5, name=f"i{k}")
            for k in range(6)
        ]
        sequential = HunIPUSolver(toy_spec).solve_many(instances)
        batched = BatchSolver(HunIPUSolver(toy_spec)).solve_batch(instances)
        for seq, bat in zip(sequential, batched.results):
            np.testing.assert_array_equal(seq.assignment, bat.assignment)
            assert seq.total_cost == bat.total_cost  # exact, not approx
            assert seq.stats["supersteps"] == bat.stats["supersteps"]

    def test_results_in_input_order(self, toy_spec, rng):
        sizes = [9, 6, 9, 6]
        instances = [
            LAPInstance(rng.uniform(0, 5, (n, n)), name=f"inst{k}")
            for k, n in enumerate(sizes)
        ]
        result = BatchSolver(
            HunIPUSolver(toy_spec), pad_to_cached=False
        ).solve_batch(instances)
        assert [r.size for r in result.results] == sizes

    def test_padded_instances_still_optimal(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        hunipu.compiled_for(8)
        instances = [
            LAPInstance(rng.normal(size=(7, 7)) - 3.0, name=f"p{k}")
            for k in range(3)
        ]
        result = BatchSolver(hunipu).solve_batch(instances)
        for instance, solved in zip(instances, result.results):
            assert solved.size == instance.size
            assert solved.total_cost == pytest.approx(
                _oracle_cost(instance), abs=1e-9
            )
            assert solved.stats["padded_from"] == 7
            assert solved.stats["padded_to"] == 8
            check_optimality(instance, solved)

    def test_negative_cost_padding_stays_optimal(self, toy_spec, rng):
        hunipu = HunIPUSolver(toy_spec)
        hunipu.compiled_for(7)
        instances = [
            LAPInstance(-np.abs(rng.normal(size=(6, 6))) - 5.0) for _ in range(3)
        ]
        result = BatchSolver(hunipu).solve_batch(instances)
        for instance, solved in zip(instances, result.results):
            assert solved.total_cost == pytest.approx(
                _oracle_cost(instance), abs=1e-9
            )

    def test_empty_batch(self, toy_spec):
        result = BatchSolver(HunIPUSolver(toy_spec)).solve_batch([])
        assert result.results == ()
        assert result.groups == ()
        assert result.instances_per_second == 0.0

    def test_accepts_generators(self, toy_spec, rng):
        result = BatchSolver(HunIPUSolver(toy_spec)).solve_batch(
            LAPInstance(rng.uniform(0, 5, (6, 6))) for _ in range(2)
        )
        assert result.instances == 2

    def test_solve_all_returns_plain_list(self, toy_spec, rng):
        instances = [LAPInstance(rng.uniform(0, 5, (6, 6))) for _ in range(2)]
        results = BatchSolver(HunIPUSolver(toy_spec)).solve_all(instances)
        assert len(results) == 2
        assert results[0].solver == "hunipu"

    def test_wall_time_is_per_instance(self, toy_spec, rng):
        result = BatchSolver(HunIPUSolver(toy_spec)).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (6, 6))) for _ in range(2)]
        )
        for solved in result.results:
            assert 0 < solved.wall_time_s < result.wall_seconds

    def test_tracer_receives_batch_events(self, toy_spec, rng):
        tracer = Tracer()
        hunipu = HunIPUSolver(toy_spec, tracer=tracer)
        BatchSolver(hunipu).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (6, 6)))]
        )
        kinds = [event.kind for event in tracer.events]
        assert "batch_start" in kinds and "batch_end" in kinds


class TestGenericFallback:
    def test_scipy_facade_with_mixed_sizes(self, rng):
        instances = [
            LAPInstance(rng.normal(size=(n, n)), name=f"g{k}")
            for k, n in enumerate([5, 7, 5])
        ]
        result = BatchSolver(ScipySolver(), pad_to_cached=False).solve_batch(
            instances
        )
        for instance, solved in zip(instances, result.results):
            assert solved.total_cost == pytest.approx(
                _oracle_cost(instance), abs=1e-9
            )
        assert [(g.size, g.instances) for g in result.groups] == [(5, 2), (7, 1)]

    def test_generic_padding_restricts(self, rng):
        # Force padding by making 7 the batch-majority size.
        instances = [
            LAPInstance(rng.normal(size=(7, 7))) for _ in range(2)
        ] + [LAPInstance(rng.normal(size=(6, 6)), name="straggler")]
        result = BatchSolver(ScipySolver()).solve_batch(instances)
        straggler = result.results[2]
        assert straggler.size == 6
        assert straggler.stats["padded_to"] == 7
        assert straggler.total_cost == pytest.approx(
            _oracle_cost(instances[2]), abs=1e-9
        )


class TestMetricsAndReporting:
    def test_batch_metrics_recorded(self, toy_spec, rng):
        registry = MetricsRegistry()
        hunipu = HunIPUSolver(toy_spec, metrics=registry)
        hunipu.compiled_for(8)
        BatchSolver(hunipu).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (8, 8))) for _ in range(3)]
            + [LAPInstance(rng.uniform(0, 5, (7, 7)))]
        )
        assert registry.get("batch.instances").value == 4
        assert registry.get("batch.groups").value == 1
        assert registry.get("batch.padded_instances").value == 1
        assert registry.get("batch.amortized_lookups").value == 3
        assert registry.get("batch.last_instances_per_second").value > 0
        assert registry.get("batch.group_device_seconds").count == 1

    def test_metrics_override_registry(self, toy_spec, rng):
        registry = MetricsRegistry()
        batch = BatchSolver(HunIPUSolver(toy_spec), metrics=registry)
        batch.solve_batch([LAPInstance(rng.uniform(0, 5, (6, 6)))])
        assert registry.get("batch.instances").value == 1

    def test_uses_solver_registry_even_when_empty(self, toy_spec):
        registry = MetricsRegistry()  # empty => falsy; must still be used
        batch = BatchSolver(HunIPUSolver(toy_spec, metrics=registry))
        assert batch.metrics is registry

    def test_summary_is_json_ready(self, toy_spec, rng):
        import json

        result = BatchSolver(HunIPUSolver(toy_spec)).solve_batch(
            [LAPInstance(rng.uniform(0, 5, (6, 6)))]
        )
        summary = result.summary()
        json.dumps(summary)
        assert summary["instances"] == 1
        assert summary["groups"][0]["size"] == 6

    def test_group_report_derived_quantities(self):
        group = GroupReport(
            size=8,
            instances=4,
            padded=0,
            compile_cache_hit=True,
            prep_seconds=0.1,
            run_seconds=0.2,
            device_seconds=0.4,
        )
        assert group.device_seconds_per_instance == pytest.approx(0.1)
        assert dataclasses.replace(group, instances=0).device_seconds_per_instance == 0.0


class TestRestriction:
    def test_restriction_guard_raises_on_crossing(self, rng):
        from repro.lap.result import AssignmentResult

        instance = LAPInstance(rng.normal(size=(3, 3)))
        crossed = AssignmentResult(
            assignment=np.array([0, 4, 2, 1, 3]),
            total_cost=0.0,
            solver="test",
        )
        with pytest.raises(SolverError, match="padding"):
            _restrict_result(crossed, instance, 5)
