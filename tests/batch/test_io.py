"""Tests for batch-file loading (repro.batch.io)."""

import json

import numpy as np
import pytest

from repro.batch import load_batch_file
from repro.errors import InvalidProblemError


class TestNpy:
    def test_single_matrix(self, tmp_path, rng):
        path = tmp_path / "one.npy"
        np.save(path, rng.normal(size=(5, 5)))
        instances = load_batch_file(path)
        assert [i.size for i in instances] == [5]
        assert instances[0].name == "one"

    def test_stack(self, tmp_path, rng):
        path = tmp_path / "stack.npy"
        np.save(path, rng.normal(size=(3, 4, 4)))
        instances = load_batch_file(path)
        assert [i.size for i in instances] == [4, 4, 4]
        assert instances[1].name == "stack[1]"

    def test_rejects_wrong_ndim(self, tmp_path, rng):
        path = tmp_path / "flat.npy"
        np.save(path, rng.normal(size=7))
        with pytest.raises(InvalidProblemError, match="ndim"):
            load_batch_file(path)

    def test_rejects_rectangular(self, tmp_path, rng):
        path = tmp_path / "rect.npy"
        np.save(path, rng.normal(size=(3, 5)))
        with pytest.raises(InvalidProblemError, match="square"):
            load_batch_file(path)


class TestNpz:
    def test_entries_sorted_by_key(self, tmp_path, rng):
        path = tmp_path / "arch.npz"
        np.savez(
            path, b=rng.normal(size=(4, 4)), a=rng.normal(size=(6, 6))
        )
        instances = load_batch_file(path)
        assert [(i.name, i.size) for i in instances] == [("a", 6), ("b", 4)]


class TestJson:
    def test_bare_list_of_matrices(self, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps([[[1, 2], [3, 4]], [[0, 1], [1, 0]]]))
        instances = load_batch_file(path)
        assert [i.size for i in instances] == [2, 2]
        assert instances[0].name == "plain[0]"

    def test_instances_object_with_names(self, tmp_path):
        path = tmp_path / "named.json"
        path.write_text(
            json.dumps(
                {
                    "instances": [
                        {"name": "x", "costs": [[1, 2], [3, 4]]},
                        [[5, 6], [7, 8]],
                    ]
                }
            )
        )
        instances = load_batch_file(path)
        assert instances[0].name == "x"
        assert instances[1].name == "named[1]"

    def test_missing_instances_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"problems": []}))
        with pytest.raises(InvalidProblemError, match="instances"):
            load_batch_file(path)

    def test_missing_costs(self, tmp_path):
        path = tmp_path / "nocost.json"
        path.write_text(json.dumps({"instances": [{"name": "x"}]}))
        with pytest.raises(InvalidProblemError, match="costs"):
            load_batch_file(path)

    def test_non_list_payload(self, tmp_path):
        path = tmp_path / "scalar.json"
        path.write_text("3")
        with pytest.raises(InvalidProblemError, match="expected a list"):
            load_batch_file(path)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidProblemError, match="not found"):
            load_batch_file(tmp_path / "absent.npy")

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "batch.csv"
        path.write_text("1,2\n3,4\n")
        with pytest.raises(InvalidProblemError, match="suffix"):
            load_batch_file(path)


class TestMalformedFiles:
    """Corrupt or hostile inputs must surface as typed InvalidProblemError."""

    def test_garbage_npz_bytes(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01not-a-zip-archive\xff" * 8)
        with pytest.raises(InvalidProblemError, match="readable"):
            load_batch_file(path)

    def test_garbage_npy_bytes(self, tmp_path):
        path = tmp_path / "garbage.npy"
        path.write_bytes(b"definitely not the npy magic header")
        with pytest.raises(InvalidProblemError, match="readable"):
            load_batch_file(path)

    def test_undecodable_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"instances": [[[1, 2], [3,')
        with pytest.raises(InvalidProblemError, match="not valid JSON"):
            load_batch_file(path)

    def test_binary_json(self, tmp_path):
        path = tmp_path / "binary.json"
        path.write_bytes(b"\xff\xfe\x00\x01")
        with pytest.raises(InvalidProblemError):
            load_batch_file(path)

    def test_non_numeric_json_entries(self, tmp_path):
        path = tmp_path / "words.json"
        path.write_text(json.dumps([[["a", "b"], ["c", "d"]]]))
        with pytest.raises(InvalidProblemError, match="not a numeric matrix"):
            load_batch_file(path)

    def test_string_dtype_npz_entry(self, tmp_path):
        path = tmp_path / "strings.npz"
        np.savez(path, words=np.array([["a", "b"], ["c", "d"]]))
        with pytest.raises(InvalidProblemError, match="non-numeric dtype"):
            load_batch_file(path)

    def test_string_dtype_npy(self, tmp_path):
        path = tmp_path / "strings.npy"
        np.save(path, np.array([["a", "b"], ["c", "d"]]))
        with pytest.raises(InvalidProblemError, match="numeric"):
            load_batch_file(path)


class TestEmptyBatches:
    def test_empty_json_list(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(InvalidProblemError, match="no instances"):
            load_batch_file(path)

    def test_empty_instances_object(self, tmp_path):
        path = tmp_path / "empty-obj.json"
        path.write_text(json.dumps({"instances": []}))
        with pytest.raises(InvalidProblemError, match="no instances"):
            load_batch_file(path)

    def test_npz_with_no_arrays(self, tmp_path):
        path = tmp_path / "empty.npz"
        np.savez(path)
        with pytest.raises(InvalidProblemError, match="no instances"):
            load_batch_file(path)


class TestDtypeCoercion:
    def test_bool_matrix_is_accepted(self, tmp_path):
        path = tmp_path / "bools.npy"
        np.save(path, np.array([[True, False], [False, True]]))
        instances = load_batch_file(path)
        assert instances[0].costs.dtype == np.float64
        assert instances[0].costs[0, 0] == 1.0

    def test_integer_npz_entries_are_coerced(self, tmp_path, rng):
        path = tmp_path / "ints.npz"
        np.savez(path, m=rng.integers(0, 100, size=(4, 4)))
        instances = load_batch_file(path)
        assert instances[0].costs.dtype == np.float64

    def test_mixed_dtype_json_rows_are_rejected(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps([[[1, 2], ["three", 4]]]))
        with pytest.raises(InvalidProblemError, match="not a numeric matrix"):
            load_batch_file(path)
