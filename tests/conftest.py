"""Shared fixtures for the HunIPU reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ipu.spec import IPUSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test random generator."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def toy_spec() -> IPUSpec:
    """A small IPU spec (4 tiles) for fast graph tests."""
    return IPUSpec.toy(num_tiles=4)


@pytest.fixture(scope="session")
def mk2_spec() -> IPUSpec:
    """The paper's Mk2 device."""
    return IPUSpec.mk2()
