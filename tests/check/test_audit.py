"""The solver audit: every graph HunIPU builds must pass the checker.

This is the property the CI ``constraint-check`` gate enforces via
``python -m repro check``; here it runs at small sizes so the tier-1 suite
holds it too.
"""

from repro.check import check_document
from repro.check.audit import (
    DEFAULT_AUDIT_SIZES,
    audit_engine_modes,
    audit_solver,
)
from repro.obs.export import validate_document


class TestAuditSolver:
    def test_all_solver_graphs_pass(self):
        entries = audit_solver(sizes=(8,))
        # n=8 compressed + uncompressed, plus the batch path (n=8 and the
        # n=7 instance solved via padding or its own compiled graph).
        assert len(entries) >= 3
        labels = [entry.label for entry in entries]
        assert len(set(labels)) == len(labels)
        assert any(label.startswith("batch-path") for label in labels)
        for entry in entries:
            assert entry.report.ok, entry.report.format_text()

    def test_remainder_size_passes(self):
        """n=13 exercises the ±1-row remainder mapping."""
        entries = audit_solver(sizes=(13,), include_batch=False)
        assert [e.label for e in entries] == [
            "hunipu n=13 (compressed)",
            "hunipu n=13 (compressed) warm",
            "hunipu n=13 (uncompressed)",
            "hunipu n=13 (uncompressed) warm",
        ]
        for entry in entries:
            assert entry.report.ok, entry.report.format_text()

    def test_document_round_trip(self):
        entries = audit_solver(sizes=(8,), include_batch=False)
        document = check_document(
            {entry.label: entry.report for entry in entries},
            meta={"sizes": [8]},
        )
        validate_document(document)
        assert document["ok"] is True

    def test_default_sizes_cover_the_interesting_shapes(self):
        assert 13 in DEFAULT_AUDIT_SIZES  # the remainder case stays covered


class TestAuditMultiIPU:
    def test_sharded_solver_graphs_pass_strict(self):
        """Every graph the sharded multi-IPU solver builds — hierarchical
        reduces included — passes the full checker with zero findings."""
        from repro.ipu.cluster import ClusterSpec

        spec = ClusterSpec.toy(num_tiles=4, num_ipus=2).system()
        entries = audit_solver(sizes=(8,), spec=spec, include_batch=False)
        assert entries
        for entry in entries:
            assert entry.report.clean, entry.report.format_text()


class TestAuditEngineModes:
    def test_modes_produce_identical_findings(self):
        reports = audit_engine_modes(8)
        assert set(reports) == {"batched", "per_tile"}
        assert reports["batched"].diagnostics == reports["per_tile"].diagnostics
        assert reports["batched"].ok and reports["per_tile"].ok
