"""Unit tests of the static BSP constraint checker (C1–C4).

Each test builds a small hand-made graph that violates exactly one
constraint and asserts the checker reports precisely that — code,
severity, compute set, tensor, tile and the offending interval.
"""

import numpy as np
import pytest

from repro.check import (
    CheckConfig,
    Diagnostic,
    check_document,
    check_graph,
    check_report_to_dict,
)
from repro.errors import CompilationError, ConstraintError
from repro.ipu.codelets import Codelet
from repro.ipu.compiler import compile_graph
from repro.ipu.engine import Engine
from repro.ipu.graph import ComputeGraph
from repro.ipu.mapping import TileMapping
from repro.ipu.oplib import Fill
from repro.ipu.programs import Execute
from repro.obs.export import SchemaError, validate_document


class _Writer(Codelet):
    fields = {"out": "out"}

    def compute_all(self, views, params, cost):  # pragma: no cover
        views["out"][...] = 1
        return np.zeros(views["out"].shape[0])


class _Reader(Codelet):
    fields = {"data": "in"}

    def compute_all(self, views, params, cost):  # pragma: no cover
        return np.zeros(views["data"].shape[0])


class _DynLocal(Codelet):
    """Stand-in partition-and-distribute kernel (runtime-indexed)."""

    fields = {"data": "inout"}
    dynamic_access = True
    local_fields = ("data",)

    def compute_all(self, views, params, cost):  # pragma: no cover
        return np.zeros(views["data"].shape[0])


def _graph_with_tensor(toy_spec, size=8, tile=0, dtype=np.float32):
    graph = ComputeGraph(toy_spec)
    tensor = graph.add_tensor(
        "x", (size,), dtype, mapping=TileMapping.single_tile(size, tile)
    )
    return graph, tensor


class TestWriteWriteRace:
    def test_overlapping_writes_rejected(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("racy_ww")
        writer = _Writer()
        cs.add_vertex(writer, 0, {"out": ComputeGraph.span(tensor, 0, 5)})
        cs.add_vertex(writer, 1, {"out": ComputeGraph.span(tensor, 3, 8)})

        report = check_graph(graph)
        assert not report.ok
        (diag,) = report.errors
        assert diag.code == "C1.WRITE_WRITE"
        assert diag.severity == "error"
        assert diag.compute_set == "racy_ww"
        assert diag.tensor == "x"
        assert diag.interval == (3, 5)
        assert diag.tile == 0
        assert diag.constraint == "C1"

    def test_disjoint_writes_clean(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("split")
        fill = Fill()
        cs.add_vertex(fill, 0, {"data": ComputeGraph.span(tensor, 0, 4)},
                      params={"value": 1})
        cs.add_vertex(fill, 1, {"data": ComputeGraph.span(tensor, 4, 8)},
                      params={"value": 2})
        assert check_graph(graph).clean

    def test_many_races_truncated(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("pileup")
        writer = _Writer()
        for tile in range(12):
            cs.add_vertex(
                writer, tile % 4, {"out": ComputeGraph.full(tensor)}
            )
        report = check_graph(graph)
        ww = [d for d in report.diagnostics if d.code == "C1.WRITE_WRITE"]
        truncated = [d for d in report.diagnostics if d.code == "C1.TRUNCATED"]
        assert len(ww) == 8
        assert len(truncated) == 1
        assert "suppressed" in truncated[0].message


class TestReadWriteRace:
    def test_read_of_written_region_rejected(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("racy_rw")
        cs.add_vertex(_Writer(), 0, {"out": ComputeGraph.span(tensor, 0, 4)})
        cs.add_vertex(_Reader(), 1, {"data": ComputeGraph.span(tensor, 2, 6)})

        report = check_graph(graph)
        assert not report.ok
        (diag,) = report.errors
        assert diag.code == "C1.READ_WRITE"
        assert diag.compute_set == "racy_rw"
        assert diag.tensor == "x"
        assert diag.interval == (2, 4)

    def test_inout_vertex_not_self_racing(self, toy_spec):
        """A vertex may read-modify-write its own region (inout fields)."""
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("rmw")
        cs.add_vertex(Fill(), 0, {"data": ComputeGraph.full(tensor)},
                      params={"value": 0})
        assert check_graph(graph).clean

    def test_reader_in_other_compute_set_is_fine(self, toy_spec):
        """Supersteps are barriers: write then read across sets is legal."""
        graph, tensor = _graph_with_tensor(toy_spec)
        write = graph.add_compute_set("write")
        write.add_vertex(_Writer(), 0, {"out": ComputeGraph.full(tensor)})
        read = graph.add_compute_set("read")
        read.add_vertex(_Reader(), 1, {"data": ComputeGraph.full(tensor)})
        assert check_graph(graph).clean


class TestMemory:
    def test_tile_overflow_rejected(self, toy_spec):
        # 20000 float64 on one toy tile = 160000 bytes > the 64 KiB budget.
        graph = ComputeGraph(toy_spec)
        graph.add_tensor(
            "big", (20000,), np.float64,
            mapping=TileMapping.single_tile(20000, tile=0),
        )
        report = check_graph(graph)
        assert not report.ok
        (diag,) = report.errors
        assert diag.code == "C2.TILE_MEMORY"
        assert diag.tile == 0
        assert diag.tensor == "big"
        assert str(toy_spec.tile_memory_bytes) in diag.message

    def test_headroom_warning(self, toy_spec):
        # 60000 bytes fits 65536 but crosses the 20 % headroom mark.
        graph = ComputeGraph(toy_spec)
        graph.add_tensor(
            "snug", (15000,), np.float32,
            mapping=TileMapping.single_tile(15000, tile=1),
        )
        report = check_graph(graph, config=CheckConfig(memory_headroom=0.2))
        assert report.ok and not report.clean
        (diag,) = report.warnings
        assert diag.code == "C2.HEADROOM"
        assert diag.tile == 1

    def test_unmapped_tensor_reported(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        graph.add_tensor("floating", (4,), np.int32)
        report = check_graph(graph)
        (diag,) = report.errors
        assert diag.code == "C2.UNMAPPED"
        assert diag.tensor == "floating"

    def test_vertex_state_counts_toward_budget(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec, size=8)
        cs = graph.add_compute_set("cs")
        reader = _Reader()
        for _ in range(10):
            cs.add_vertex(reader, 0, {"data": ComputeGraph.full(tensor)})
        # Tensor alone: 32 bytes.  State: 10 * (60000 + 16) blows the budget.
        config = CheckConfig(vertex_state_bytes=60000)
        report = check_graph(graph, config=config)
        (diag,) = report.errors
        assert diag.code == "C2.TILE_MEMORY"
        assert "vertex state" in diag.message


class TestBalanceLint:
    def test_skewed_compute_set_flagged(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "v", (64,), np.float32,
            mapping=TileMapping.single_tile(64, tile=3),
        )
        cs = graph.add_compute_set("skewed")
        reader = _Reader()
        cs.add_vertex(reader, 0, {"data": ComputeGraph.span(tensor, 0, 60)})
        cs.add_vertex(reader, 1, {"data": ComputeGraph.span(tensor, 60, 62)})
        cs.add_vertex(reader, 2, {"data": ComputeGraph.span(tensor, 62, 64)})
        report = check_graph(graph)
        (diag,) = report.warnings
        assert diag.code == "C3.IMBALANCE"
        assert diag.severity == "warning"
        assert diag.compute_set == "skewed"
        assert diag.tile == 0
        assert report.ok  # lint only

    def test_balanced_compute_set_clean(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "v", (8,), np.float32, mapping=TileMapping.single_tile(8)
        )
        cs = graph.add_compute_set("even")
        reader = _Reader()
        cs.add_vertex(reader, 0, {"data": ComputeGraph.span(tensor, 0, 4)})
        cs.add_vertex(reader, 1, {"data": ComputeGraph.span(tensor, 4, 8)})
        assert check_graph(graph).clean


class TestIPUImbalanceLint:
    """C3.IPU_IMBALANCE: per-chip work skew on multi-IPU systems."""

    def _skewed_cluster_graph(self):
        """Tiles level enough individually, but chip 0 carries 8x chip 1."""
        from repro.ipu.cluster import ClusterSpec

        spec = ClusterSpec.toy(num_tiles=4, num_ipus=2).system()
        graph = ComputeGraph(spec)
        tensor = graph.add_tensor(
            "v", (45,), np.float32,
            mapping=TileMapping.single_tile(45, tile=7),
        )
        cs = graph.add_compute_set("chip_skewed")
        reader = _Reader()
        # Chip 0 (tiles 0-3): 10 elements each; chip 1 (tile 4): 5.
        for tile in range(4):
            cs.add_vertex(
                reader, tile,
                {"data": ComputeGraph.span(tensor, tile * 10, tile * 10 + 10)},
            )
        cs.add_vertex(reader, 4, {"data": ComputeGraph.span(tensor, 40, 45)})
        return graph

    def test_chip_skew_flagged(self):
        graph = self._skewed_cluster_graph()
        # Tile ratio is 10/9; chip ratio is 40/22.5 — only the chip-level
        # statistic crosses a 1.5x threshold.
        report = check_graph(graph, config=CheckConfig(imbalance_threshold=1.5))
        codes = [diag.code for diag in report.warnings]
        assert codes == ["C3.IPU_IMBALANCE"]
        (diag,) = report.warnings
        assert diag.severity == "warning"
        assert diag.compute_set == "chip_skewed"
        assert diag.tile == 0  # first tile of the overloaded chip
        assert "IPU 0" in diag.message
        assert report.ok  # lint only

    def test_default_threshold_keeps_it_quiet(self):
        graph = self._skewed_cluster_graph()
        assert check_graph(graph).clean

    def test_single_chip_never_emits_ipu_code(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "v", (64,), np.float32,
            mapping=TileMapping.single_tile(64, tile=3),
        )
        cs = graph.add_compute_set("skewed")
        reader = _Reader()
        cs.add_vertex(reader, 0, {"data": ComputeGraph.span(tensor, 0, 60)})
        cs.add_vertex(reader, 1, {"data": ComputeGraph.span(tensor, 60, 64)})
        report = check_graph(graph, config=CheckConfig(imbalance_threshold=1.5))
        assert all(d.code != "C3.IPU_IMBALANCE" for d in report.warnings)

    def test_balanced_cluster_clean(self):
        from repro.ipu.cluster import ClusterSpec

        spec = ClusterSpec.toy(num_tiles=2, num_ipus=2).system()
        graph = ComputeGraph(spec)
        tensor = graph.add_tensor(
            "v", (16,), np.float32, mapping=TileMapping.single_tile(16)
        )
        cs = graph.add_compute_set("even")
        reader = _Reader()
        for tile in range(4):
            cs.add_vertex(
                reader, tile,
                {"data": ComputeGraph.span(tensor, tile * 4, tile * 4 + 4)},
            )
        assert check_graph(graph, config=CheckConfig(imbalance_threshold=1.1)).clean


class TestDynamicOpLint:
    def test_foreign_segment_flagged(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "seg", (8,), np.float32,
            mapping=TileMapping.single_tile(8, tile=1),
        )
        cs = graph.add_compute_set("dyn")
        cs.add_vertex(_DynLocal(), 0, {"data": ComputeGraph.full(tensor)})
        report = check_graph(graph)
        (diag,) = report.warnings
        assert diag.code == "C4.NONLOCAL"
        assert diag.tensor == "seg"
        assert diag.tile == 0  # the vertex's tile, not the segment's
        assert diag.interval == (0, 8)

    def test_local_segment_clean(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "seg", (8,), np.float32,
            mapping=TileMapping.single_tile(8, tile=2),
        )
        cs = graph.add_compute_set("dyn")
        cs.add_vertex(_DynLocal(), 2, {"data": ComputeGraph.full(tensor)})
        assert check_graph(graph).clean


class TestProgramRestriction:
    def test_unreachable_compute_sets_skipped(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        racy = graph.add_compute_set("racy")
        writer = _Writer()
        racy.add_vertex(writer, 0, {"out": ComputeGraph.full(tensor)})
        racy.add_vertex(writer, 1, {"out": ComputeGraph.full(tensor)})
        clean = graph.add_compute_set("clean")
        clean.add_vertex(_Reader(), 0, {"data": ComputeGraph.full(tensor)})

        assert not check_graph(graph).ok
        restricted = check_graph(graph, program=Execute(clean))
        assert restricted.ok
        assert restricted.compute_sets_checked == 1


class TestReportApi:
    def _racy_report(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("racy")
        writer = _Writer()
        cs.add_vertex(writer, 0, {"out": ComputeGraph.full(tensor)})
        cs.add_vertex(writer, 1, {"out": ComputeGraph.full(tensor)})
        return check_graph(graph)

    def test_raise_if_failed(self, toy_spec):
        report = self._racy_report(toy_spec)
        with pytest.raises(ConstraintError, match="C1.WRITE_WRITE"):
            report.raise_if_failed()

    def test_warnings_not_fatal_by_default(self, toy_spec):
        graph = ComputeGraph(toy_spec)
        tensor = graph.add_tensor(
            "seg", (8,), np.float32,
            mapping=TileMapping.single_tile(8, tile=1),
        )
        cs = graph.add_compute_set("dyn")
        cs.add_vertex(_DynLocal(), 0, {"data": ComputeGraph.full(tensor)})
        report = check_graph(graph)
        report.raise_if_failed()  # warnings only: no raise
        with pytest.raises(ConstraintError):
            report.raise_if_failed(include_warnings=True)

    def test_by_constraint_and_format(self, toy_spec):
        report = self._racy_report(toy_spec)
        assert report.by_constraint() == {"C1": 1}
        assert "C1.WRITE_WRITE" in report.format_text()
        assert "compute set 'racy'" in report.diagnostics[0].format()

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(code="C1.X", severity="fatal", message="nope")

    def test_config_validation(self):
        with pytest.raises(ValueError, match="memory_headroom"):
            CheckConfig(memory_headroom=1.5)
        with pytest.raises(ValueError, match="imbalance_threshold"):
            CheckConfig(imbalance_threshold=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            CheckConfig(vertex_state_bytes=-1)


class TestDocumentExport:
    def test_document_validates(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("racy")
        writer = _Writer()
        cs.add_vertex(writer, 0, {"out": ComputeGraph.full(tensor)})
        cs.add_vertex(writer, 1, {"out": ComputeGraph.full(tensor)})
        report = check_graph(graph)

        document = check_document({"toy racy": report}, meta={"sizes": [8]})
        validate_document(document)
        assert document["schema"] == "repro.check/1"
        assert document["ok"] is False
        (entry,) = document["reports"]
        assert entry["label"] == "toy racy"
        assert entry["by_constraint"] == {"C1": 1}
        (diag,) = entry["diagnostics"]
        assert diag["code"] == "C1.WRITE_WRITE"
        assert diag["interval"] == [0, 8]

    def test_inconsistent_ok_flag_rejected(self, toy_spec):
        graph, _ = _graph_with_tensor(toy_spec)
        document = check_document({"clean": check_graph(graph)})
        document["ok"] = False  # disagrees with the all-ok reports
        with pytest.raises(SchemaError):
            validate_document(document)

    def test_report_to_dict_round_trip_counts(self, toy_spec):
        graph, _ = _graph_with_tensor(toy_spec)
        report = check_graph(graph)
        payload = check_report_to_dict(report)
        assert payload["ok"] is True
        assert payload["tensors_checked"] == 1
        assert payload["diagnostics"] == []


class TestCompilerAndEngineWiring:
    def _rw_racy(self, toy_spec):
        """Passes the compiler's write-overlap check, fails the checker."""
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("rw")
        cs.add_vertex(_Writer(), 0, {"out": ComputeGraph.span(tensor, 0, 4)})
        cs.add_vertex(_Reader(), 1, {"data": ComputeGraph.span(tensor, 2, 6)})
        return graph, Execute(cs)

    def test_strict_engine_rejects(self, toy_spec):
        graph, program = self._rw_racy(toy_spec)
        compile_graph(graph, program)  # compiles fine without the checker
        with pytest.raises(ConstraintError, match="C1.READ_WRITE"):
            Engine(graph, program, check="strict")

    def test_warn_engine_keeps_report(self, toy_spec):
        graph, program = self._rw_racy(toy_spec)
        engine = Engine(graph, program, check="warn")
        report = engine.compiled.check_report
        assert report is not None and not report.ok

    def test_off_is_default(self, toy_spec):
        graph, program = self._rw_racy(toy_spec)
        assert Engine(graph, program).compiled.check_report is None

    def test_unknown_mode_rejected(self, toy_spec):
        graph, program = self._rw_racy(toy_spec)
        with pytest.raises(CompilationError, match="check mode"):
            compile_graph(graph, program, check="loose")

    def test_strict_accepts_clean_graph(self, toy_spec):
        graph, tensor = _graph_with_tensor(toy_spec)
        cs = graph.add_compute_set("fill")
        cs.add_vertex(Fill(), 0, {"data": ComputeGraph.full(tensor)},
                      params={"value": 3})
        engine = Engine(graph, Execute(cs), check="strict")
        assert engine.compiled.check_report.clean
