"""Tests for the noise model, metrics, and the end-to-end pipeline."""

import networkx as nx
import numpy as np
import pytest

from repro.alignment.evaluation import edge_correctness, node_correctness
from repro.alignment.noise import noisy_copy
from repro.alignment.pipeline import align, align_many, align_noisy_copy
from repro.baselines.cpu_lapjv import LAPJVSolver
from repro.baselines.fastha import FastHASolver
from repro.core.solver import HunIPUSolver
from repro.errors import InvalidProblemError
from repro.ipu.spec import IPUSpec


def _ring(n):
    graph = nx.cycle_graph(n)
    return graph


@pytest.fixture
def small_graph():
    return nx.gnp_random_graph(20, 0.35, seed=4)


class TestNoise:
    def test_retention_counts(self, small_graph):
        copy = noisy_copy(small_graph, 0.8, rng=1)
        expected = round(0.8 * small_graph.number_of_edges())
        assert copy.kept_edges == expected
        assert copy.copy.number_of_edges() == expected
        assert copy.edge_retention == pytest.approx(0.8, abs=0.05)

    def test_truth_is_permutation(self, small_graph):
        copy = noisy_copy(small_graph, 0.9, rng=2)
        assert sorted(copy.truth.tolist()) == list(range(20))

    def test_full_retention_preserves_structure(self, small_graph):
        copy = noisy_copy(small_graph, 1.0, rng=3)
        # Relabeling back with the truth recovers the original edge set.
        inverse = np.empty(20, dtype=int)
        inverse[copy.truth] = np.arange(20)
        recovered = {
            tuple(sorted((inverse[u], inverse[v]))) for u, v in copy.copy.edges
        }
        original = {tuple(sorted(edge)) for edge in small_graph.edges}
        assert recovered == original

    def test_no_shuffle_mode(self, small_graph):
        copy = noisy_copy(small_graph, 1.0, rng=4, shuffle=False)
        assert np.array_equal(copy.truth, np.arange(20))

    def test_rejects_bad_retention(self, small_graph):
        with pytest.raises(InvalidProblemError):
            noisy_copy(small_graph, 0.0)
        with pytest.raises(InvalidProblemError):
            noisy_copy(small_graph, 1.5)

    def test_rejects_non_contiguous_labels(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(InvalidProblemError, match="0..n-1"):
            noisy_copy(graph, 0.9)


class TestMetrics:
    def test_node_correctness(self):
        assert node_correctness(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0
        assert node_correctness(np.array([0, 2, 1]), np.array([0, 1, 2])) == pytest.approx(1 / 3)

    def test_node_correctness_shape_mismatch(self):
        with pytest.raises(InvalidProblemError):
            node_correctness(np.array([0]), np.array([0, 1]))

    def test_edge_correctness(self):
        ring = _ring(4)
        identity = np.arange(4)
        assert edge_correctness(ring, ring, identity) == 1.0
        empty = nx.empty_graph(4)
        assert edge_correctness(ring, empty, identity) == 0.0
        assert edge_correctness(empty, ring, identity) == 1.0


class TestPipeline:
    def test_recovers_identity_on_clean_copy(self, small_graph):
        copy = noisy_copy(small_graph, 1.0, rng=5)
        result, accuracy = align_noisy_copy(small_graph, copy, LAPJVSolver())
        assert accuracy == 1.0
        assert node_correctness(result.mapping, copy.truth) == 1.0

    def test_hunipu_and_lapjv_agree_on_matching_quality(self, small_graph):
        copy = noisy_copy(small_graph, 0.95, rng=6)
        hunipu = HunIPUSolver(spec=IPUSpec.toy(num_tiles=4))
        result_a, acc_a = align_noisy_copy(small_graph, copy, hunipu)
        result_b, acc_b = align_noisy_copy(small_graph, copy, LAPJVSolver())
        # Both solve the same LAP optimally: same total similarity.
        assert result_a.lap_result.total_cost == pytest.approx(
            result_b.lap_result.total_cost, rel=1e-9
        )
        assert acc_a == acc_b

    def test_fastha_padding_applied(self, small_graph):
        copy = noisy_copy(small_graph, 0.9, rng=7)
        result, _ = align_noisy_copy(
            small_graph, copy, FastHASolver(), pad_power_of_two=True
        )
        assert result.padded_size == 32  # 20 -> 32
        assert result.mapping.shape == (20,)

    def test_rejects_size_mismatch(self):
        with pytest.raises(InvalidProblemError, match="equal node counts"):
            align(_ring(4), _ring(5), LAPJVSolver())

    def test_device_time_exposed(self, small_graph):
        copy = noisy_copy(small_graph, 0.9, rng=8)
        hunipu = HunIPUSolver(spec=IPUSpec.toy(num_tiles=4))
        result, _ = align_noisy_copy(small_graph, copy, hunipu)
        assert result.device_time_s > 0


class TestAlignMany:
    def test_matches_per_pair_align(self, small_graph):
        copies = [noisy_copy(small_graph, 0.9, rng=seed) for seed in (10, 11, 12)]
        pairs = [(small_graph, copy.copy) for copy in copies]
        hunipu = HunIPUSolver(spec=IPUSpec.toy(num_tiles=4))
        batched = align_many(pairs, hunipu)
        assert len(batched) == 3
        for (first, second), result in zip(pairs, batched):
            single = align(first, second, LAPJVSolver())
            assert result.lap_result.total_cost == pytest.approx(
                single.lap_result.total_cost, rel=1e-9
            )
            assert result.mapping.shape == (20,)
        # One compiled graph serves the whole stream.
        assert set(hunipu._compiled) == {20}

    def test_power_of_two_padding_preserved(self, small_graph):
        copy = noisy_copy(small_graph, 0.9, rng=13)
        results = align_many(
            [(small_graph, copy.copy)], FastHASolver(), pad_power_of_two=True
        )
        assert results[0].padded_size == 32
        assert results[0].mapping.shape == (20,)

    def test_empty_stream(self):
        assert align_many([], LAPJVSolver()) == []
