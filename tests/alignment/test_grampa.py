"""Tests for the GRAMPA spectral similarity."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.grampa import DEFAULT_ETA, adjacency_matrix, grampa_similarity
from repro.errors import InvalidProblemError


def _random_graph(n, p, seed):
    return nx.gnp_random_graph(n, p, seed=seed)


class TestBasics:
    def test_default_eta_is_paper_value(self):
        assert DEFAULT_ETA == 0.2

    def test_adjacency_sorted_nodes(self):
        graph = nx.Graph()
        graph.add_nodes_from([2, 0, 1])
        graph.add_edge(0, 2)
        adj = adjacency_matrix(graph)
        assert adj[0, 2] == 1
        assert adj[2, 0] == 1
        assert adj.sum() == 2

    def test_shape(self):
        g = _random_graph(10, 0.3, 1)
        similarity = grampa_similarity(g, g)
        assert similarity.shape == (10, 10)

    def test_rejects_nonpositive_eta(self):
        g = _random_graph(4, 0.5, 0)
        with pytest.raises(InvalidProblemError, match="eta"):
            grampa_similarity(g, g, eta=0.0)

    def test_rejects_size_mismatch(self):
        with pytest.raises(InvalidProblemError, match="differ"):
            grampa_similarity(np.zeros((3, 3)), np.zeros((4, 4)))

    def test_rejects_asymmetric(self):
        asym = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(InvalidProblemError, match="symmetric"):
            grampa_similarity(asym, asym.copy())

    def test_rejects_non_square(self):
        flat = np.zeros((2, 3))
        sym = np.zeros((3, 3))
        with pytest.raises(InvalidProblemError):
            grampa_similarity(flat, sym)


class TestMathematicalProperties:
    def test_self_similarity_diagonal_dominates(self):
        """Aligning a graph with itself: the true (identity) match should
        carry the highest total similarity."""
        g = _random_graph(12, 0.4, 3)
        similarity = grampa_similarity(g, g)
        diagonal = np.trace(similarity)
        rng = np.random.default_rng(0)
        for _ in range(10):
            perm = rng.permutation(12)
            if np.array_equal(perm, np.arange(12)):
                continue
            shuffled = similarity[np.arange(12), perm].sum()
            assert diagonal >= shuffled - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(3, 12), seed=st.integers(0, 500))
    def test_permutation_equivariance(self, n, seed):
        """S(A, PBPᵀ) == S(A, B) P^T — relabeling the second graph permutes
        the similarity columns."""
        gen = np.random.default_rng(seed)
        a = gen.integers(0, 2, (n, n))
        a = np.triu(a, 1)
        a = (a + a.T).astype(float)
        b = gen.integers(0, 2, (n, n))
        b = np.triu(b, 1)
        b = (b + b.T).astype(float)
        perm = gen.permutation(n)
        p = np.eye(n)[perm]
        base = grampa_similarity(a, b)
        relabeled = grampa_similarity(a, p @ b @ p.T)
        assert np.allclose(relabeled, base @ p.T, atol=1e-8)

    def test_formula_matches_naive_sum(self):
        """The efficient U(W∘(uᵀJv))Vᵀ form equals the definition's
        explicit double sum over eigenpairs."""
        gen = np.random.default_rng(9)
        n = 6
        a = gen.integers(0, 2, (n, n))
        a = ((np.triu(a, 1)) + np.triu(a, 1).T).astype(float)
        b = gen.integers(0, 2, (n, n))
        b = ((np.triu(b, 1)) + np.triu(b, 1).T).astype(float)
        eta = 0.2
        lam, u = np.linalg.eigh(a)
        mu, v = np.linalg.eigh(b)
        ones = np.ones((n, n))
        naive = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                w = 1.0 / ((lam[i] - mu[j]) ** 2 + eta**2)
                naive += w * np.outer(u[:, i], u[:, i]) @ ones @ np.outer(
                    v[:, j], v[:, j]
                )
        fast = grampa_similarity(a, b, eta=eta)
        assert np.allclose(fast, naive, atol=1e-8)
