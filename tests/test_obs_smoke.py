"""End-to-end smoke tests for the observability surface.

Runs the real CLI (``repro solve --trace``, ``repro profile --json``,
``repro run --json``) on small instances and validates every emitted JSON
document against its schema, so trace output can never silently rot.
"""

import json
import math

import pytest

from repro.cli import main
from repro.obs import validate_document
from repro.obs.export import SchemaError


class TestSolveTrace:
    @pytest.fixture(scope="class")
    def trace_document(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        assert main(
            ["solve", "--size", "24", "--k", "50", "--seed", "7",
             "--trace", str(path)]
        ) == 0
        return json.loads(path.read_text())

    def test_schema_validates(self, trace_document):
        assert validate_document(trace_document) == "repro.trace/1"

    def test_meta_round_trips_cli_args(self, trace_document):
        meta = trace_document["meta"]
        assert meta["size"] == 24
        assert meta["seed"] == 7
        assert meta["solver"] == "hunipu"

    def test_superstep_count_matches_embedded_profile(self, trace_document):
        summary = trace_document["summary"]
        profile = trace_document["profile"]
        assert summary["supersteps"] == profile["supersteps"]

    def test_step_totals_match_profile_records(self, trace_document):
        # summary.step_seconds must agree with by_prefix sums over the
        # embedded profile records (the acceptance criterion).
        profile_totals = {}
        for record in trace_document["profile"]["records"]:
            total = (
                record["compute_seconds"]
                + record["sync_seconds"]
                + record["exchange_seconds"]
            )
            for prefix in trace_document["summary"]["step_seconds"]:
                if record["name"].startswith(prefix):
                    profile_totals[prefix] = profile_totals.get(prefix, 0.0) + total
                    break
        for prefix, traced in trace_document["summary"]["step_seconds"].items():
            assert math.isclose(
                traced, profile_totals.get(prefix, 0.0),
                rel_tol=1e-9, abs_tol=1e-15,
            ), prefix

    def test_imbalance_ratio_present(self, trace_document):
        imbalance = trace_document["summary"]["tile_imbalance"]
        assert imbalance["mean"] >= 1.0
        assert imbalance["max"] >= imbalance["mean"]

    def test_tampered_document_fails_validation(self, trace_document):
        broken = json.loads(json.dumps(trace_document))
        broken["summary"]["supersteps"] += 1
        with pytest.raises(SchemaError):
            validate_document(broken)


class TestSolveFlags:
    def test_seed_echoed(self, capsys):
        assert main(["solve", "--size", "12", "--seed", "42"]) == 0
        assert "seed          : 42" in capsys.readouterr().out

    def test_verbose_flag_accepted(self, capsys):
        assert main(["solve", "--size", "12", "-v"]) == 0
        assert main(["solve", "--size", "12", "--log-level", "debug"]) == 0
        # Reset CLI logging so later tests aren't chatty.
        from repro.obs.logging_setup import setup_logging

        setup_logging("warning")

    def test_trace_requires_hunipu(self, tmp_path, capsys):
        code = main(
            ["solve", "--size", "12", "--solver", "scipy",
             "--trace", str(tmp_path / "t.json")]
        )
        assert code == 2
        assert "hunipu" in capsys.readouterr().err


class TestProfileCommand:
    def test_prints_table_and_diagnostics(self, capsys, tmp_path):
        path = tmp_path / "profile.json"
        assert main(
            ["profile", "--size", "16", "--k", "10", "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "compute set" in out  # the per-step BSP table header
        assert "tile imbalance" in out
        assert "augmenting paths" in out
        document = json.loads(path.read_text())
        assert validate_document(document) == "repro.trace/1"
        assert "solver.solves" in document["metrics"]


class TestRunRecords:
    def test_bench_json_written_and_valid(self, capsys, tmp_path):
        assert main(
            ["run", "table1", "--scale", "quick",
             "--output", str(tmp_path), "--json"]
        ) == 0
        out = capsys.readouterr().out
        assert "results written to:" in out
        assert str(tmp_path / "table1.txt") in out
        bench_path = tmp_path / "BENCH_table1.json"
        assert str(bench_path) in out
        document = json.loads(bench_path.read_text())
        assert validate_document(document) == "repro.bench-run/1"
        assert document["records"], "run records must not be empty"

    def test_json_without_output_rejected(self, capsys):
        assert main(["run", "table1", "--scale", "quick", "--json"]) == 2
        assert "--output" in capsys.readouterr().err

    def test_unsaved_run_says_so(self, capsys):
        assert main(["run", "table1", "--scale", "quick"]) == 0
        assert "results not saved" in capsys.readouterr().out
