"""Tests for the CPU, LAPJV, scipy-oracle and FastHA solver facades."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.baselines.cpu_hungarian import CPUHungarianSolver, CPUSpec
from repro.baselines.cpu_lapjv import LAPJVSolver, solve_lapjv
from repro.baselines.fastha import FastHASolver
from repro.baselines.munkres_reference import OpCounter
from repro.baselines.scipy_reference import ScipySolver
from repro.errors import SolverError
from repro.lap.problem import LAPInstance
from repro.lap.validation import check_perfect_matching, check_potentials


def _optimum(costs):
    rows, cols = linear_sum_assignment(costs)
    return float(costs[rows, cols].sum())


class TestCPUSolver:
    def test_solves_and_models_time(self, rng):
        costs = rng.uniform(1, 100, (20, 20))
        result = CPUHungarianSolver().solve(LAPInstance(costs))
        assert result.total_cost == pytest.approx(_optimum(costs), abs=1e-7)
        assert result.device_time_s > 0
        assert result.stats["machine"] == "amd-epyc-7742"

    def test_model_seconds_formula(self):
        spec = CPUSpec(
            clock_hz=1e9,
            scan_elements_per_cycle=1.0,
            stream_elements_per_cycle=4.0,
            bookkeeping_cycles_per_op=2.0,
        )
        ops = OpCounter(scan_ops=100, update_ops=40, reduce_ops=40, bookkeeping_ops=5)
        assert spec.model_seconds(ops) == pytest.approx((100 + 20 + 10) / 1e9)

    def test_epyc_clock(self):
        assert CPUSpec.epyc_7742().clock_hz == pytest.approx(2.25e9)


class TestLAPJV:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 18), seed=st.integers(0, 100_000))
    def test_optimal_with_valid_duals(self, n, seed):
        costs = np.random.default_rng(seed).uniform(0, 100, (n, n))
        assignment, u, v = solve_lapjv(costs)
        check_perfect_matching(assignment, n)
        got = costs[np.arange(n), assignment].sum()
        assert got == pytest.approx(_optimum(costs), abs=1e-7)
        check_potentials(LAPInstance(costs), u, v, assignment)

    def test_facade_exposes_duals(self, rng):
        costs = rng.uniform(0, 10, (8, 8))
        result = LAPJVSolver().solve(LAPInstance(costs))
        assert "dual_u" in result.stats
        assert result.device_time_s is None

    def test_rejects_rectangular(self):
        with pytest.raises(SolverError):
            solve_lapjv(np.zeros((3, 4)))


class TestScipyOracle:
    def test_facade(self, rng):
        costs = rng.uniform(0, 10, (9, 9))
        result = ScipySolver().solve(LAPInstance(costs))
        assert result.total_cost == pytest.approx(_optimum(costs))
        assert result.solver == "scipy-oracle"


class TestFastHA:
    def test_requires_power_of_two(self, rng):
        solver = FastHASolver()
        with pytest.raises(SolverError, match="2\\^m"):
            solver.solve(LAPInstance(rng.uniform(0, 1, (5, 5))))

    def test_solves_power_of_two(self, rng):
        costs = rng.uniform(1, 100, (16, 16))
        result = FastHASolver().solve(LAPInstance(costs))
        assert result.total_cost == pytest.approx(_optimum(costs), abs=1e-7)
        assert result.device_time_s > 0

    def test_solve_padded_records_sizes(self, rng):
        costs = rng.uniform(1, 10, (11, 11))
        result = FastHASolver().solve_padded(LAPInstance(costs))
        assert result.stats["padded_from"] == 11
        assert result.stats["padded_to"] == 16
        assert result.size == 16

    def test_padded_solve_is_optimal_for_padded_matrix(self, rng):
        """The padded solve is exact for the padded problem (what the
        paper times); zero padding can only lower the total cost."""
        costs = rng.uniform(1, 10, (6, 6))
        instance = LAPInstance(costs)
        result = FastHASolver().solve_padded(instance)
        padded = instance.padded_to_power_of_two()
        assert result.total_cost == pytest.approx(_optimum(padded.costs), abs=1e-7)
        assert result.total_cost <= _optimum(costs) + 1e-9

    def test_profile_contains_hungarian_kernels(self, rng):
        costs = rng.uniform(1, 100, (32, 32))
        result = FastHASolver().solve(LAPInstance(costs))
        profile = result.stats["gpu_profile"]
        names = {record.name for record in profile.records}
        assert "find_uncovered_zero" in names
        assert "add_subtract_update" in names
        assert result.stats["host_syncs"] > 0

    def test_launch_overhead_dominates_small_kernels(self, rng):
        """The paper's mechanism: search kernels are launch-bound."""
        costs = rng.uniform(1, 320, (32, 32))
        result = FastHASolver().solve(LAPInstance(costs))
        profile = result.stats["gpu_profile"]
        record = profile.record_named("find_uncovered_zero")
        assert record.launch_seconds > record.memory_seconds

    def test_fastha_slower_than_launchfree_equivalent(self, rng):
        """More primes => more launches => more modeled time."""
        rng_local = np.random.default_rng(0)
        small = FastHASolver().solve(
            LAPInstance(rng_local.uniform(1, 160, (16, 16)))
        )
        large = FastHASolver().solve(
            LAPInstance(rng_local.uniform(1, 640, (64, 64)))
        )
        assert large.device_time_s > small.device_time_s
