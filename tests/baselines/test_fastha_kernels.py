"""Tests for the kernel-executing FastHA and the GPU kernel library."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.baselines.fastha import FastHASolver
from repro.baselines.fastha_kernels import FastHAKernelSolver
from repro.errors import GPUSimulationError, SolverError
from repro.gpu.kernels import KernelLibrary
from repro.gpu.simt import GPUDevice
from repro.lap.problem import LAPInstance


class TestKernelLibrary:
    @pytest.fixture
    def kernels(self):
        return KernelLibrary(GPUDevice())

    def test_upload_charges_pcie(self, kernels):
        kernels.upload("buf", np.zeros((64, 64)))
        profile = kernels.device.profile()
        assert profile.host_syncs == 1
        assert profile.sync_seconds > kernels.device.spec.host_sync_s

    def test_row_min_subtract(self, kernels):
        slack = kernels.upload("slack", np.array([[3.0, 1.0], [5.0, 9.0]]))
        kernels.row_min_subtract(slack)
        assert slack.array.tolist() == [[2.0, 0.0], [0.0, 4.0]]

    def test_find_uncovered_zero_row_major(self, kernels):
        matrix = np.ones((3, 3))
        matrix[1, 2] = 0.0
        matrix[2, 0] = 0.0
        slack = kernels.upload("slack", matrix)
        row_cover = kernels.alloc_zeros("rc", (3,), np.int8)
        col_cover = kernels.alloc_zeros("cc", (3,), np.int8)
        assert kernels.find_uncovered_zero(slack, row_cover, col_cover, 0.0) == (1, 2)
        row_cover.array[1] = 1
        assert kernels.find_uncovered_zero(slack, row_cover, col_cover, 0.0) == (2, 0)
        row_cover.array[2] = 1
        assert kernels.find_uncovered_zero(slack, row_cover, col_cover, 0.0) is None

    def test_min_uncovered_raises_on_empty_region(self, kernels):
        slack = kernels.upload("slack", np.ones((2, 2)))
        row_cover = kernels.alloc_zeros("rc", (2,), np.int8)
        col_cover = kernels.alloc_zeros("cc", (2,), np.int8)
        row_cover.array[:] = 1
        with pytest.raises(GPUSimulationError):
            kernels.min_uncovered(slack, row_cover, col_cover)

    def test_add_subtract_update_rule(self, kernels):
        slack = kernels.upload("slack", np.full((2, 2), 4.0))
        row_cover = kernels.alloc_zeros("rc", (2,), np.int8)
        col_cover = kernels.alloc_zeros("cc", (2,), np.int8)
        row_cover.array[0] = 1
        col_cover.array[0] = 1
        kernels.add_subtract_update(slack, row_cover, col_cover, 2.0)
        assert slack.array.tolist() == [[6.0, 4.0], [4.0, 2.0]]

    def test_buffers_respect_vram(self):
        from repro.gpu.spec import GPUSpec

        device = GPUDevice(GPUSpec(vram_bytes=100))
        kernels = KernelLibrary(device)
        with pytest.raises(GPUSimulationError, match="out of device memory"):
            kernels.alloc_zeros("big", (1000,), np.float64)


class TestKernelSolver:
    @pytest.mark.parametrize("n", [1, 4, 16, 32])
    def test_optimal_on_random_instances(self, rng, n):
        costs = rng.uniform(1, 10 * n, (n, n))
        result = FastHAKernelSolver().solve(LAPInstance(costs))
        rows, cols = linear_sum_assignment(costs)
        assert result.total_cost == pytest.approx(
            float(costs[rows, cols].sum()), abs=1e-7
        )

    def test_tie_heavy_instance(self, rng):
        costs = rng.integers(0, 3, (16, 16)).astype(float)
        result = FastHAKernelSolver().solve(LAPInstance(costs))
        rows, cols = linear_sum_assignment(costs)
        assert result.total_cost == pytest.approx(float(costs[rows, cols].sum()))

    def test_requires_power_of_two(self, rng):
        with pytest.raises(SolverError, match="2\\^m"):
            FastHAKernelSolver().solve(LAPInstance(rng.uniform(0, 1, (5, 5))))

    def test_cost_regime_matches_observer_edition(self, rng):
        """The executing and event-charged editions agree on the regime:
        same optimum, launch counts within a few percent, modeled times
        within ~40% (the kernel edition adds per-hop readback syncs)."""
        instance = LAPInstance(rng.uniform(1, 640, (64, 64)))
        kernel = FastHAKernelSolver().solve(instance)
        observer = FastHASolver().solve(instance)
        assert kernel.total_cost == pytest.approx(observer.total_cost)
        ratio = kernel.stats["kernel_launches"] / observer.stats["kernel_launches"]
        assert 0.8 < ratio < 1.2
        time_ratio = kernel.device_time_s / observer.device_time_s
        assert 0.7 < time_ratio < 1.6
