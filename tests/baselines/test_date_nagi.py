"""Tests for the Date & Nagi GPU baseline (paper reference [8])."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.baselines.date_nagi import DateNagiSolver
from repro.baselines.fastha import FastHASolver
from repro.core.solver import HunIPUSolver
from repro.data.synthetic import gaussian_instance
from repro.lap.problem import LAPInstance


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 7, 16, 33])
    def test_optimal_on_random_instances(self, rng, n):
        costs = rng.uniform(1, 10 * n, (n, n))
        result = DateNagiSolver().solve(LAPInstance(costs))
        rows, cols = linear_sum_assignment(costs)
        assert result.total_cost == pytest.approx(
            float(costs[rows, cols].sum()), abs=1e-7
        )

    def test_no_power_of_two_restriction(self, rng):
        costs = rng.uniform(1, 10, (13, 13))
        DateNagiSolver().solve(LAPInstance(costs))  # no error


class TestCostModel:
    def test_profile_contains_transfer_heavy_syncs(self, rng):
        result = DateNagiSolver().solve(
            LAPInstance(rng.uniform(1, 320, (32, 32)))
        )
        # Host-resident bookkeeping: more syncs than kernel launches.
        assert result.stats["host_syncs"] > result.stats["kernel_launches"]

    def test_historical_ordering_fastha_wins(self):
        """FastHA (2019) improves on Date & Nagi (2016); HunIPU beats both."""
        instance = gaussian_instance(256, 100, seed=1)
        hunipu = HunIPUSolver().solve(instance)
        fastha = FastHASolver().solve(instance)
        date_nagi = DateNagiSolver().solve(instance)
        assert hunipu.device_time_s < fastha.device_time_s
        assert fastha.device_time_s < date_nagi.device_time_s

    def test_same_optimum_as_fastha(self):
        instance = gaussian_instance(64, 10, seed=2)
        fastha = FastHASolver().solve(instance)
        date_nagi = DateNagiSolver().solve(instance)
        assert date_nagi.total_cost == pytest.approx(fastha.total_cost)

    def test_pcie_transfers_dominate_over_fastha_gap(self):
        """The extra cost vs FastHA comes from host transfers, not kernels."""
        instance = gaussian_instance(128, 100, seed=3)
        fastha = FastHASolver().solve(instance)
        date_nagi = DateNagiSolver().solve(instance)
        fast_profile = fastha.stats["gpu_profile"]
        nagi_profile = date_nagi.stats["gpu_profile"]
        assert nagi_profile.sync_seconds > fast_profile.sync_seconds
