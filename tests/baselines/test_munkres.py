"""Tests for the reference cover-based Munkres solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.baselines.munkres_reference import (
    MunkresObserver,
    OpCounter,
    solve_munkres,
    zero_tolerance,
)
from repro.errors import SolverError


def _optimum(costs):
    rows, cols = linear_sum_assignment(costs)
    return float(costs[rows, cols].sum())


class TestOptimality:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 20), seed=st.integers(0, 100_000))
    def test_random_float_instances(self, n, seed):
        costs = np.random.default_rng(seed).uniform(0, 100, (n, n))
        outcome = solve_munkres(costs)
        got = costs[np.arange(n), outcome.assignment].sum()
        assert got == pytest.approx(_optimum(costs), abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 16), seed=st.integers(0, 100_000))
    def test_tie_heavy_integer_instances(self, n, seed):
        costs = np.random.default_rng(seed).integers(0, 3, (n, n)).astype(float)
        outcome = solve_munkres(costs)
        got = costs[np.arange(n), outcome.assignment].sum()
        assert got == pytest.approx(_optimum(costs), abs=1e-9)

    def test_rejects_rectangular(self):
        with pytest.raises(SolverError, match="square"):
            solve_munkres(np.zeros((2, 3)))

    def test_terminal_slack_nonnegative_and_tight(self):
        costs = np.random.default_rng(1).uniform(0, 50, (12, 12))
        outcome = solve_munkres(costs)
        tol = zero_tolerance(costs)
        assert outcome.final_slack.min() >= -tol
        matched = outcome.final_slack[
            np.arange(12), outcome.assignment
        ]
        assert np.abs(matched).max() <= tol * 10


class TestCounters:
    def test_ops_counted(self):
        ops = OpCounter()
        solve_munkres(np.random.default_rng(2).uniform(0, 9, (10, 10)), ops=ops)
        assert ops.scan_ops > 0
        assert ops.update_ops > 0
        assert ops.reduce_ops > 0
        assert ops.total() == (
            ops.scan_ops + ops.update_ops + ops.reduce_ops + ops.bookkeeping_ops
        )

    def test_ops_grow_superlinearly_with_n(self):
        rng = np.random.default_rng(3)
        small_ops, large_ops = OpCounter(), OpCounter()
        solve_munkres(rng.uniform(0, 160, (16, 16)), ops=small_ops)
        solve_munkres(rng.uniform(0, 640, (64, 64)), ops=large_ops)
        assert large_ops.total() > small_ops.total() * (64 / 16) ** 2

    def test_augmentations_bounded_by_n(self):
        outcome = solve_munkres(np.random.default_rng(4).uniform(0, 9, (15, 15)))
        assert 0 <= outcome.augmentations <= 15


class TestObserver:
    def test_events_fire_in_plausible_counts(self):
        class Recorder(MunkresObserver):
            def __init__(self):
                self.counts = {}
                self.path_lengths = []

            def on_initial_subtract(self, n):
                self.counts["subtract"] = self.counts.get("subtract", 0) + 1

            def on_greedy_init(self, n):
                self.counts["greedy"] = self.counts.get("greedy", 0) + 1

            def on_cover_columns(self, n):
                self.counts["cover"] = self.counts.get("cover", 0) + 1

            def on_zero_scan(self, n, found):
                self.counts["scan"] = self.counts.get("scan", 0) + 1

            def on_prime(self, n):
                self.counts["prime"] = self.counts.get("prime", 0) + 1

            def on_slack_update(self, n):
                self.counts["update"] = self.counts.get("update", 0) + 1

            def on_augment(self, n, path_length):
                self.counts["augment"] = self.counts.get("augment", 0) + 1
                self.path_lengths.append(path_length)

        recorder = Recorder()
        n = 14
        outcome = solve_munkres(
            np.random.default_rng(5).uniform(0, 140, (n, n)), observer=recorder
        )
        assert recorder.counts["subtract"] == 1
        assert recorder.counts["greedy"] == 1
        assert recorder.counts["augment"] == outcome.augmentations
        assert recorder.counts["update"] == outcome.slack_updates
        assert recorder.counts["prime"] + recorder.counts["augment"] == outcome.primes
        # Every scan either finds a zero (prime) or triggers an update.
        assert recorder.counts["scan"] == outcome.primes + outcome.slack_updates
        assert all(length >= 1 for length in recorder.path_lengths)
        # Augmentations add exactly one star each: path flips |primes|,
        # and total stars at the end is n.
        assert recorder.counts["cover"] == outcome.augmentations + 1
