"""Differential tests on structured (adversarial) instance families.

Random matrices exercise the average case; these families exercise the
algorithm's corners: maximal tie degeneracy, rank-one structure (every
assignment optimal), block structure (forced sub-assignments), permutation
matrices (a unique sharp optimum), and near-degenerate values.  Every
family runs through HunIPU, the CPU baseline, and the kernel-level FastHA
where sizes allow, against the scipy optimum.
"""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.baselines.cpu_hungarian import CPUHungarianSolver
from repro.baselines.fastha_kernels import FastHAKernelSolver
from repro.core.solver import HunIPUSolver
from repro.ipu.spec import IPUSpec
from repro.lap.problem import LAPInstance


def _optimum(costs):
    rows, cols = linear_sum_assignment(costs)
    return float(costs[rows, cols].sum())


@pytest.fixture(scope="module")
def solvers():
    return [
        HunIPUSolver(spec=IPUSpec.toy(num_tiles=4)),
        CPUHungarianSolver(),
    ]


def _assert_all_optimal(costs, solvers):
    instance = LAPInstance(costs)
    target = _optimum(costs)
    for solver in solvers:
        result = solver.solve(instance)
        assert result.total_cost == pytest.approx(target, abs=1e-7), solver.name


class TestDegenerateFamilies:
    def test_all_equal_costs(self, solvers):
        _assert_all_optimal(np.full((16, 16), 7.0), solvers)

    def test_rank_one_outer_product(self, solvers):
        """u_i * v_j costs: the optimum anti-sorts u against v."""
        u = np.linspace(1, 4, 12)
        v = np.linspace(2, 9, 12)
        _assert_all_optimal(np.outer(u, v), solvers)

    def test_additive_rank_one(self, solvers):
        """u_i + v_j costs: every permutation has the same total."""
        u = np.arange(10, dtype=float)
        v = np.arange(10, dtype=float) * 3
        costs = u[:, None] + v[None, :]
        instance = LAPInstance(costs)
        expected = u.sum() + v.sum()
        for solver in solvers:
            result = solver.solve(instance)
            assert result.total_cost == pytest.approx(expected)

    def test_permutation_matrix_sharp_optimum(self, solvers):
        """Cost 0 on one hidden permutation, 1 elsewhere: must find it."""
        gen = np.random.default_rng(5)
        n = 14
        perm = gen.permutation(n)
        costs = np.ones((n, n))
        costs[np.arange(n), perm] = 0.0
        instance = LAPInstance(costs)
        for solver in solvers:
            result = solver.solve(instance)
            assert result.total_cost == pytest.approx(0.0)
            assert np.array_equal(result.assignment, perm)

    def test_block_diagonal_forces_local_assignments(self, solvers):
        """Cheap 4x4 blocks on the diagonal, expensive elsewhere."""
        gen = np.random.default_rng(6)
        n, block = 16, 4
        costs = np.full((n, n), 100.0)
        for start in range(0, n, block):
            costs[start : start + block, start : start + block] = gen.uniform(
                0, 1, (block, block)
            )
        instance = LAPInstance(costs)
        for solver in solvers:
            result = solver.solve(instance)
            # Every row stays inside its block.
            assert all(
                row // block == int(col) // block
                for row, col in enumerate(result.assignment)
            )
            assert result.total_cost == pytest.approx(
                _optimum(costs), abs=1e-9
            )

    def test_near_degenerate_values(self, solvers):
        """Values differing by ~1e-9 of the magnitude stress the zero
        tolerance without crossing it."""
        gen = np.random.default_rng(7)
        base = gen.uniform(1000.0, 1001.0, (12, 12))
        _assert_all_optimal(base, solvers)

    def test_single_row_dominates(self, solvers):
        """One row is expensive everywhere except one column."""
        costs = np.ones((10, 10))
        costs[3, :] = 1000.0
        costs[3, 7] = 0.5
        instance = LAPInstance(costs)
        for solver in solvers:
            result = solver.solve(instance)
            assert result.assignment[3] == 7

    def test_antidiagonal_optimum(self, solvers):
        n = 12
        costs = np.fromfunction(
            lambda i, j: (i + j - (n - 1)) ** 2 + 1.0, (n, n)
        )
        instance = LAPInstance(costs)
        for solver in solvers:
            result = solver.solve(instance)
            assert np.array_equal(
                result.assignment, (n - 1) - np.arange(n)
            )


class TestKernelFastHAOnStructure:
    def test_permutation_matrix(self):
        gen = np.random.default_rng(8)
        perm = gen.permutation(16)
        costs = np.ones((16, 16))
        costs[np.arange(16), perm] = 0.0
        result = FastHAKernelSolver().solve(LAPInstance(costs))
        assert result.total_cost == pytest.approx(0.0)

    def test_all_ties(self):
        result = FastHAKernelSolver().solve(LAPInstance(np.full((8, 8), 3.0)))
        assert result.total_cost == pytest.approx(24.0)
