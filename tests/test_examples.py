"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py", "24")
        assert result.returncode == 0, result.stderr
        assert "scipy oracle agrees: True" in result.stdout
        assert "Per-step modeled time" in result.stdout

    def test_graph_alignment(self):
        result = _run("graph_alignment.py", "HighSchool", "0.1", "0.99")
        assert result.returncode == 0, result.stderr
        assert "HunIPU" in result.stdout
        assert "FastHA" in result.stdout

    def test_resource_allocation(self):
        result = _run("resource_allocation.py", "24")
        assert result.returncode == 0, result.stderr
        assert "optimal (HunIPU) total" in result.stdout

    def test_shape_matching(self):
        result = _run("shape_matching.py", "24", "4")
        assert result.returncode == 0, result.stderr
        assert "recovered correspondence in 4/4 frames" in result.stdout

    def test_bfs_on_ipu(self):
        result = _run("bfs_on_ipu.py", "48", "4")
        assert result.returncode == 0, result.stderr
        assert "distances match networkx : True" in result.stdout

    def test_ipu_tour(self):
        result = _run("ipu_tour.py")
        assert result.returncode == 0, result.stderr
        assert "compiler rejected" in result.stdout
        assert "BSP accounting" in result.stdout
