"""Ablation benchmarks for HunIPU's §IV design choices."""

from __future__ import annotations

import pytest

from repro.bench.ablations import mapping_exchange_bytes, run_ablations
from repro.core.solver import HunIPUSolver
from repro.data.synthetic import gaussian_instance


def test_compression_on(benchmark, scale):
    instance = gaussian_instance(scale.ablation_size, 100, seed=0)
    solver = HunIPUSolver()
    solver.compiled_for(instance.size)
    result = benchmark.pedantic(solver.solve, args=(instance,), rounds=1, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


def test_compression_off(benchmark, scale):
    instance = gaussian_instance(scale.ablation_size, 100, seed=0)
    solver = HunIPUSolver(use_compression=False)
    solver.compiled_for(instance.size)
    result = benchmark.pedantic(solver.solve, args=(instance,), rounds=1, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


@pytest.mark.parametrize("decomposition", ["1d", "2d"])
def test_mapping_probe(benchmark, decomposition):
    """Static exchange analysis of a per-row scan under each mapping."""
    total = benchmark(mapping_exchange_bytes, 64, 16, decomposition)
    benchmark.extra_info["exchange_bytes"] = total
    if decomposition == "1d":
        assert total == 0
    else:
        assert total > 0


def test_report_ablations(benchmark, scale, save_report):
    result = benchmark.pedantic(run_ablations, args=(scale,), rounds=1, iterations=1)
    save_report("ablations", result)
    assert len(result.tables) == 6
