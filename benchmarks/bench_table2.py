"""Table II benchmarks: HunIPU vs the optimized CPU Hungarian.

Micro-benchmarks time single solves of both solvers at the scale's grid
corners; ``test_report_table2`` regenerates the full Table II gain grid.
"""

from __future__ import annotations

import pytest

from repro.baselines.cpu_hungarian import CPUHungarianSolver
from repro.bench.table2 import run_table2
from repro.core.solver import HunIPUSolver
from repro.data.synthetic import gaussian_instance


def _corner_params(scale):
    sizes = (scale.table2_sizes[0], scale.table2_sizes[-1])
    ks = (scale.table2_k[0], scale.table2_k[-1])
    return sorted({(n, k) for n in sizes for k in ks})


@pytest.fixture(scope="module")
def hunipu():
    return HunIPUSolver()


@pytest.fixture(scope="module")
def cpu():
    return CPUHungarianSolver()


def test_hunipu_gaussian_small(benchmark, scale, hunipu):
    n, k = scale.table2_sizes[0], scale.table2_k[0]
    instance = gaussian_instance(n, k, seed=0)
    hunipu.compiled_for(n)  # compile outside the timed region
    result = benchmark.pedantic(hunipu.solve, args=(instance,), rounds=3, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


def test_hunipu_gaussian_large(benchmark, scale, hunipu):
    n, k = scale.table2_sizes[-1], scale.table2_k[-1]
    instance = gaussian_instance(n, k, seed=0)
    hunipu.compiled_for(n)
    result = benchmark.pedantic(hunipu.solve, args=(instance,), rounds=1, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


def test_cpu_gaussian_small(benchmark, scale, cpu):
    n, k = scale.table2_sizes[0], scale.table2_k[0]
    instance = gaussian_instance(n, k, seed=0)
    result = benchmark.pedantic(cpu.solve, args=(instance,), rounds=3, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


def test_cpu_gaussian_large(benchmark, scale, cpu):
    n, k = scale.table2_sizes[-1], scale.table2_k[-1]
    instance = gaussian_instance(n, k, seed=0)
    result = benchmark.pedantic(cpu.solve, args=(instance,), rounds=1, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


def test_report_table2(benchmark, scale, save_report):
    """Regenerate the full Table II grid (the paper-comparable artifact)."""
    result = benchmark.pedantic(run_table2, args=(scale,), rounds=1, iterations=1)
    save_report("table2", result)
    gains = [
        cpu.device_time_s / ipu.device_time_s
        for cpu, ipu in zip(
            result.records_for("cpu-munkres"), result.records_for("hunipu")
        )
    ]
    benchmark.extra_info["max_gain"] = max(gains)
    if scale.name == "quick":
        # The quick grid stops at n=64, below the crossover where tile
        # parallelism overtakes the serial CPU — only sanity-check there.
        assert max(gains) > 0.0
    else:
        assert max(gains) > 1.0, "HunIPU must beat the CPU somewhere in the grid"
