"""Shared fixtures for the benchmark suite.

Every ``bench_*.py`` module contains two kinds of benchmarks:

* micro-benchmarks timing individual solver calls (what pytest-benchmark
  measures: the *wall clock of the simulation*), and
* one ``test_report_*`` per paper table/figure that runs the full harness,
  prints the paper-layout table (run with ``-s`` to see it live), and saves
  it under ``benchmarks/results/``.

Grid sizes follow ``REPRO_BENCH_SCALE`` (quick / default / paper); see
``repro.bench.recording``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.recording import BenchScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active benchmark scale (env-selected)."""
    return BenchScale.from_env()


@pytest.fixture(scope="session")
def save_report():
    """Persist a harness report (text + ``BENCH_*.json``) and echo it.

    Accepts either the :class:`~repro.bench.harness.ExperimentResult`
    itself (preferred — also writes the machine-readable run record) or a
    pre-formatted report string.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, report) -> None:
        from repro.bench.harness import ExperimentResult
        from repro.bench.recording import save_bench_json

        saved = []
        if isinstance(report, ExperimentResult):
            text = report.format()
            saved.append(save_bench_json(report, RESULTS_DIR))
        else:
            text = report
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        saved.insert(0, path)
        locations = ", ".join(str(p) for p in saved)
        print(f"\n{text}\n[saved to {locations}]")

    return _save
