"""Shared fixtures for the benchmark suite.

Every ``bench_*.py`` module contains two kinds of benchmarks:

* micro-benchmarks timing individual solver calls (what pytest-benchmark
  measures: the *wall clock of the simulation*), and
* one ``test_report_*`` per paper table/figure that runs the full harness,
  prints the paper-layout table (run with ``-s`` to see it live), and saves
  it under ``benchmarks/results/``.

Grid sizes follow ``REPRO_BENCH_SCALE`` (quick / default / paper); see
``repro.bench.recording``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.recording import BenchScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active benchmark scale (env-selected)."""
    return BenchScale.from_env()


@pytest.fixture(scope="session")
def save_report():
    """Persist a harness report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
