#!/usr/bin/env python3
"""Paper-scale spot checks (the numbers recorded in EXPERIMENTS.md).

Runs the largest routinely-feasible slices of the paper's grids:

* Table II / Figure 5 at n = 512 (the paper's smallest size) across the
  five value ranges, HunIPU vs CPU vs FastHA;
* Table III at full dataset scale (HighSchool 327, Voles 712,
  MultiMagna 1004) at 90 % kept edges, HunIPU vs padded FastHA.

Expect ~10-15 minutes of simulation wall time.  Not a pytest module on
purpose — run it directly:

    python benchmarks/paper_scale_spot.py [--json OUT.json]
"""

from __future__ import annotations

import argparse
import json

from repro.alignment import align_noisy_copy, noisy_copy
from repro.baselines import CPUHungarianSolver, FastHASolver
from repro.bench.paper_reference import PAPER_TABLE2_GAIN, PAPER_TABLE3_MS
from repro.core import HunIPUSolver
from repro.data import load_dataset
from repro.data.synthetic import gaussian_instance


def synthetic_spot(results: dict) -> None:
    """n = 512 across value ranges: the Table II row + Figure 5 panel."""
    hunipu, cpu, fastha = HunIPUSolver(), CPUHungarianSolver(), FastHASolver()
    print("n = 512 (paper's smallest size), Gaussian data")
    header = (
        f"{'k':>7} {'HunIPU ms':>10} {'CPU ms':>9} {'FastHA ms':>10} "
        f"{'gain':>6} {'paper':>7} {'speedup':>8}"
    )
    print(header)
    for k in (1, 10, 100, 1000, 10000):
        instance = gaussian_instance(512, k, seed=0)
        ipu = hunipu.solve(instance)
        serial = cpu.solve(instance)
        gpu = fastha.solve(instance)
        assert abs(ipu.total_cost - serial.total_cost) < 1e-5 * (
            1 + abs(serial.total_cost)
        )
        gain = serial.device_time_s / ipu.device_time_s
        speedup = gpu.device_time_s / ipu.device_time_s
        paper = PAPER_TABLE2_GAIN.get((512, k), float("nan"))
        print(
            f"{k:>7} {ipu.device_time_s * 1e3:>10.1f} "
            f"{serial.device_time_s * 1e3:>9.1f} "
            f"{gpu.device_time_s * 1e3:>10.1f} {gain:>6.1f} {paper:>7.1f} "
            f"{speedup:>8.2f}"
        )
        results[f"n512_k{k}"] = {
            "hunipu_ms": ipu.device_time_s * 1e3,
            "cpu_ms": serial.device_time_s * 1e3,
            "fastha_ms": gpu.device_time_s * 1e3,
            "gain_cpu": gain,
            "speedup_fastha": speedup,
            "paper_gain": paper,
        }


def alignment_spot(results: dict) -> None:
    """Full-scale Table III at 90 % kept edges."""
    hunipu, fastha = HunIPUSolver(), FastHASolver()
    print("\nTable III at full dataset scale (90% kept edges)")
    print(
        f"{'dataset':<12} {'n':>5} {'HunIPU ms':>10} {'FastHA ms':>10} "
        f"{'speedup':>8} {'paper speedup':>14}"
    )
    for name in ("HighSchool", "Voles", "MultiMagna"):
        graph = load_dataset(name, scale=1.0)
        noisy = noisy_copy(graph, 0.9, rng=17)
        ipu, _ = align_noisy_copy(graph, noisy, hunipu)
        gpu, _ = align_noisy_copy(graph, noisy, fastha, pad_power_of_two=True)
        speedup = gpu.device_time_s / ipu.device_time_s
        column = "90%" if name != "MultiMagna" else "Variant1"
        paper_hunipu, paper_fastha = PAPER_TABLE3_MS[name][column]
        print(
            f"{name:<12} {graph.number_of_nodes():>5} "
            f"{ipu.device_time_s * 1e3:>10.1f} {gpu.device_time_s * 1e3:>10.1f} "
            f"{speedup:>8.1f} {paper_fastha / paper_hunipu:>14.1f}"
        )
        results[name] = {
            "n": graph.number_of_nodes(),
            "hunipu_ms": ipu.device_time_s * 1e3,
            "fastha_ms": gpu.device_time_s * 1e3,
            "fastha_padded": gpu.padded_size,
            "speedup": speedup,
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="also dump results as JSON")
    parser.add_argument(
        "--skip-alignment", action="store_true",
        help="synthetic spot only (the alignment runs take the longest)",
    )
    args = parser.parse_args()
    results: dict = {}
    synthetic_spot(results)
    if not args.skip_alignment:
        alignment_spot(results)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=1)
        print(f"\n[saved {args.json}]")


if __name__ == "__main__":
    main()
