"""Batch-engine benchmark: BatchSolver throughput vs sequential solve_many."""

from __future__ import annotations

from repro.batch import BatchSolver
from repro.bench.batch import run_batch_bench
from repro.core.solver import HunIPUSolver
from repro.data.synthetic import uniform_instance


def test_batch_stream_throughput(benchmark):
    """Micro-benchmark: one pre-compiled batch of 20 n=16 instances."""
    instances = [uniform_instance(16, 1, seed=index) for index in range(20)]
    solver = BatchSolver(HunIPUSolver())
    solver.solver.compiled_for(16)
    batch = benchmark(solver.solve_batch, instances)
    assert batch.instances == 20
    assert len(batch.groups) == 1


def test_report_batch(benchmark, scale, save_report):
    result = benchmark.pedantic(run_batch_bench, args=(scale,), rounds=1, iterations=1)
    save_report("batch", result)
    assert all("MISMATCH" not in note for note in result.shape_notes)
