"""Table III benchmarks: graph-alignment runtime on the real datasets."""

from __future__ import annotations

import pytest

from repro.alignment.noise import noisy_copy
from repro.alignment.pipeline import align_noisy_copy
from repro.baselines.fastha import FastHASolver
from repro.bench.table3 import run_table3
from repro.core.solver import HunIPUSolver
from repro.data.real import TABLE1_DATASETS, load_dataset


@pytest.fixture(scope="module")
def hunipu():
    return HunIPUSolver()


@pytest.mark.parametrize("dataset", [s.name for s in TABLE1_DATASETS])
def test_hunipu_alignment(benchmark, scale, hunipu, dataset):
    """Time the full GRAMPA + HunIPU alignment at 90% kept edges."""
    graph = load_dataset(dataset, scale=scale.dataset_scale)
    noisy = noisy_copy(graph, 0.9, rng=17)
    result = benchmark.pedantic(
        align_noisy_copy, args=(graph, noisy, hunipu), rounds=1, iterations=1
    )
    alignment, accuracy = result
    benchmark.extra_info["device_ms"] = alignment.device_time_s * 1e3
    benchmark.extra_info["node_correctness"] = accuracy


def test_fastha_alignment_padded(benchmark, scale):
    """FastHA on the padded HighSchool similarity (the §V-C procedure)."""
    graph = load_dataset("HighSchool", scale=scale.dataset_scale)
    noisy = noisy_copy(graph, 0.9, rng=17)
    fastha = FastHASolver()
    result = benchmark.pedantic(
        align_noisy_copy,
        args=(graph, noisy, fastha),
        kwargs={"pad_power_of_two": True},
        rounds=1,
        iterations=1,
    )
    alignment, _ = result
    benchmark.extra_info["device_ms"] = alignment.device_time_s * 1e3
    benchmark.extra_info["padded_size"] = alignment.padded_size


def test_report_table3(benchmark, scale, save_report):
    """Regenerate all three Table III sub-tables."""
    result = benchmark.pedantic(run_table3, args=(scale,), rounds=1, iterations=1)
    save_report("table3", result)
    assert any("OK" in note for note in result.shape_notes)
