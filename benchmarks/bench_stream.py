"""Drifting-stream benchmark: warm-start re-solve vs cold per-tick solve.

The report test writes two artifacts under ``benchmarks/results/``:

* ``stream.txt`` — the human-readable table, via ``save_report``;
* ``BENCH_stream.json`` — the schema-versioned ``repro.stream/1`` document
  (written directly, *not* through ``save_bench_json``, which would emit a
  ``repro.bench-run/1`` record under the same filename).
"""

from __future__ import annotations

import pathlib

from repro.bench.stream import run_stream
from repro.obs.export import validate_document, write_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_warm_resolve_latency(benchmark):
    """Micro-benchmark: one warm re-solve after a 2-row drift."""
    import numpy as np

    from repro.core.solver import HunIPUSolver
    from repro.lap.problem import LAPInstance

    rng = np.random.default_rng(7)
    solver = HunIPUSolver()
    costs = rng.random((16, 16))
    base = solver.solve(LAPInstance(costs.copy()), capture_warm_start=True)
    seed = base.stats["warm_start"]
    costs[rng.choice(16, size=2, replace=False)] = rng.random((2, 16))
    drifted = LAPInstance(costs)

    result = benchmark(lambda: solver.resolve(drifted, seed))
    assert result.stats["resolve"]["mode"] == "warm"
    assert result.stats["warm_start_used"] is True


def test_report_stream(benchmark, scale, save_report):
    result_doc = benchmark.pedantic(
        run_stream, args=(scale,), rounds=1, iterations=1
    )
    result, document = result_doc
    # The exactness notes are hard gates: every tick must be bit-identical
    # to cold and scipy-optimal, and the warm program must pass the audit.
    for note in result.shape_notes:
        if "bit-identical" in note or "scipy-optimal" in note:
            assert "(OK)" in note, note
        if "constraint audit" in note:
            assert note.endswith("pass"), note
    assert document["totals"]["saved_fraction"] >= 0.30, document["totals"]
    validate_document(document)
    write_json(RESULTS_DIR / "BENCH_stream.json", document)
    # Pass the formatted text, not the ExperimentResult: save_bench_json
    # would also write a BENCH_stream.json (repro.bench-run/1) on top of
    # the repro.stream/1 document just written.
    save_report("stream", result.format())
