"""Table I benchmark: dataset stand-in generation (cheap, exact counts)."""

from __future__ import annotations

import pytest

from repro.bench.table1 import run_table1
from repro.data.real import TABLE1_DATASETS, load_dataset


@pytest.mark.parametrize("dataset", [s.name for s in TABLE1_DATASETS])
def test_generate_dataset(benchmark, dataset):
    graph = benchmark(load_dataset, dataset)
    spec = next(s for s in TABLE1_DATASETS if s.name == dataset)
    assert graph.number_of_nodes() == spec.nodes
    assert graph.number_of_edges() == spec.edges


def test_report_table1(benchmark, scale, save_report):
    result = benchmark.pedantic(run_table1, args=(scale,), rounds=1, iterations=1)
    save_report("table1", result)
    assert any("OK" in note for note in result.shape_notes)
