"""Figure 5 benchmarks: FastHA (simulated A100) vs HunIPU (simulated Mk2)."""

from __future__ import annotations

import pytest

from repro.baselines.fastha import FastHASolver
from repro.bench.figure5 import run_figure5
from repro.core.solver import HunIPUSolver
from repro.data.synthetic import gaussian_instance


@pytest.fixture(scope="module")
def hunipu():
    return HunIPUSolver()


@pytest.fixture(scope="module")
def fastha():
    return FastHASolver()


def test_hunipu_midrange(benchmark, scale, hunipu):
    n = scale.figure5_sizes[-1]
    instance = gaussian_instance(n, 500, seed=0)
    hunipu.compiled_for(n)
    result = benchmark.pedantic(hunipu.solve, args=(instance,), rounds=1, iterations=1)
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3


def test_fastha_midrange(benchmark, scale, fastha):
    n = scale.figure5_sizes[-1]
    instance = gaussian_instance(n, 500, seed=0)
    result = benchmark.pedantic(
        fastha.solve_padded, args=(instance,), rounds=1, iterations=1
    )
    benchmark.extra_info["device_ms"] = result.device_time_s * 1e3
    benchmark.extra_info["kernel_launches"] = result.stats["kernel_launches"]


def test_report_figure5(benchmark, scale, save_report):
    """Regenerate every Figure 5 panel (runtime vs value range per size)."""
    result = benchmark.pedantic(run_figure5, args=(scale,), rounds=1, iterations=1)
    save_report("figure5", result)
    fast = result.records_for("fastha")
    ipu = result.records_for("hunipu")
    speedups = [
        f.device_time_s / i.device_time_s for f, i in zip(fast, ipu)
    ]
    benchmark.extra_info["avg_speedup"] = sum(speedups) / len(speedups)
    assert all(s > 1.0 for s in speedups), "HunIPU must beat FastHA everywhere"
