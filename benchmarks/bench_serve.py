"""Serving-layer benchmark: warm vs cold pools, open-loop load, faults."""

from __future__ import annotations

from repro.bench.serve import run_serve_bench
from repro.serve import SolverService, generate_workload, run_load


def test_serve_closed_loop_latency(benchmark):
    """Micro-benchmark: 12 same-shape requests through a warm service."""
    workload = generate_workload(12, seed=0, shapes=(8,), deadlines=((None, 1.0),))

    def run():
        with SolverService(workers=2, max_batch=4) as service:
            return run_load(service, workload, mode="closed", verify=False)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.lost == 0
    assert report.completed + sum(report.rejected.values()) == len(workload)


def test_report_serve(benchmark, scale, save_report):
    result = benchmark.pedantic(run_serve_bench, args=(scale,), rounds=1, iterations=1)
    save_report("serve", result)
    # The correctness notes must be OK; the warm-speedup note is timing and
    # may read CHECK on a loaded CI box, so it is reported but not gated.
    for note in result.shape_notes:
        if "lost request" in note or "verification failure" in note:
            assert "(OK)" in note, note
