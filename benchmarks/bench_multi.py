"""Multi-IPU scaling benchmark: sharded solving over 1/2/4 chips.

The report test writes two artifacts under ``benchmarks/results/``:

* ``multi.txt`` — the human-readable scaling table, via ``save_report``;
* ``BENCH_multi.json`` — the schema-versioned ``repro.multi/1`` document
  (written directly, *not* through ``save_bench_json``, which would emit a
  ``repro.bench-run/1`` record under the same filename).
"""

from __future__ import annotations

import pathlib

from repro.bench.multi import run_multi
from repro.obs.export import validate_document, write_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_sharded_solve_latency(benchmark):
    """Micro-benchmark: one sharded 2-IPU solve on toy chips."""
    import numpy as np

    from repro.core.solver import HunIPUSolver
    from repro.ipu.cluster import ClusterSpec
    from repro.lap.problem import LAPInstance

    rng = np.random.default_rng(7)
    solver = HunIPUSolver(spec=ClusterSpec.toy(num_tiles=8, num_ipus=2).system())
    instance = LAPInstance(rng.random((16, 16)))

    result = benchmark(lambda: solver.solve(instance))
    assert result.stats["profile"].inter_ipu_syncs > 0


def test_report_multi(benchmark, scale, save_report):
    result_doc = benchmark.pedantic(
        run_multi, args=(scale,), rounds=1, iterations=1
    )
    result, document = result_doc
    # The optimality note is a hard gate: every (ipus, n) cell must match
    # the scipy oracle.  The differential tests additionally pin sharded
    # runs bit-identical to single-IPU; here we gate on the oracle check.
    for note in result.shape_notes:
        if "scipy-optimal" in note:
            assert "(OK)" in note, note
    assert {row["ipus"] for row in document["rows"]} == {1, 2, 4}
    validate_document(document)
    write_json(RESULTS_DIR / "BENCH_multi.json", document)
    # Pass the formatted text, not the ExperimentResult: save_bench_json
    # would also write a BENCH_multi.json (repro.bench-run/1) on top of
    # the repro.multi/1 document just written.
    save_report("multi", result.format())
