#!/usr/bin/env python3
"""Shape matching: tracking point correspondences through a deformation.

The paper's introduction singles out 3D shape matching as a workload that
"runs the Hungarian algorithm hundreds of times", making per-solve
efficiency the bottleneck.  This example tracks the points of a 2D shape
through a sequence of rotation + noise deformations: each frame builds a
pairwise-distance cost matrix and HunIPU recovers the point-to-point
correspondence.  The compiled IPU graph is built once and reused across
all frames (``solve_many``), exactly how a real IPU deployment would
amortize compilation.

Run:  python examples/shape_matching.py [points] [frames]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import HunIPUSolver, LAPInstance


def make_shape(points: int, rng: np.random.Generator) -> np.ndarray:
    """A noisy ellipse with near-even point spacing.

    Even spacing keeps every point's nearest neighbour at a distance well
    above the per-frame motion, so the ground-truth correspondence is the
    minimum-cost one.
    """
    angles = np.linspace(0, 2 * np.pi, points, endpoint=False)
    angles += rng.uniform(-0.2, 0.2, points) * (np.pi / points)
    shape = np.stack([1.6 * np.cos(angles), np.sin(angles)], axis=1)
    return shape + rng.normal(0, 0.005, shape.shape)


def deform(shape: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Rotate a little and jitter — one animation frame.

    The rotation per frame (0.04 rad) stays below the typical angular
    spacing of the points, so the true correspondence remains the
    minimum-distance one (tracking, not global re-identification).
    """
    theta = 0.04
    rotation = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    return shape @ rotation.T + rng.normal(0, 0.005, shape.shape)


def main() -> None:
    points = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    rng = np.random.default_rng(11)
    source = make_shape(points, rng)

    # Track frame to frame: each solve matches the previous frame's points
    # against the (shuffled) next frame.
    instances = []
    permutations = []
    current = source
    for frame in range(frames):
        target = deform(current, rng)
        # Hide the correspondence: shuffle the target points.
        permutation = rng.permutation(points)
        permutations.append(permutation)
        shuffled = target[permutation]
        costs = np.linalg.norm(
            current[:, None, :] - shuffled[None, :, :], axis=2
        )
        instances.append(LAPInstance(costs, name=f"frame-{frame}"))
        current = target

    solver = HunIPUSolver()
    results = solver.solve_many(instances)

    correct_frames = 0
    total_device_ms = 0.0
    print(f"{'frame':>5} {'device ms':>10} {'recovered':>10}")
    for frame, (result, permutation) in enumerate(zip(results, permutations)):
        # result.assignment[i] = index into the shuffled target; mapping it
        # through the permutation should recover point i itself.
        recovered = permutation[result.assignment]
        exact = bool(np.array_equal(recovered, np.arange(points)))
        correct_frames += exact
        total_device_ms += result.device_time_s * 1e3
        print(f"{frame:>5} {result.device_time_s * 1e3:>10.3f} {str(exact):>10}")

    print(f"\nrecovered correspondence in {correct_frames}/{frames} frames")
    print(f"total modeled IPU time for the sequence: {total_device_ms:.2f} ms")
    print(
        "the compiled graph was built once and re-executed "
        f"{frames} times (one size -> one compilation)"
    )
    if correct_frames < frames:
        print("note: heavy deformation frames may match a rotated labeling")


if __name__ == "__main__":
    main()
