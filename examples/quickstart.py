#!/usr/bin/env python3
"""Quickstart: solve one assignment problem with HunIPU.

Builds a random cost matrix, solves it on the simulated IPU, checks the
result against scipy's exact oracle, and prints the modeled device-time
breakdown per HunIPU step.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import HunIPUSolver, LAPInstance, ScipySolver


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rng = np.random.default_rng(42)
    costs = rng.uniform(1.0, 10.0 * size, (size, size))
    instance = LAPInstance(costs, name=f"quickstart-{size}")

    print(f"Solving a {size}x{size} assignment problem on the simulated IPU...")
    solver = HunIPUSolver()
    result = solver.solve(instance)

    oracle = ScipySolver().solve(instance)
    matches = abs(result.total_cost - oracle.total_cost) < 1e-6

    print(f"  optimal total cost : {result.total_cost:.4f}")
    print(f"  scipy oracle agrees: {matches}")
    print(f"  modeled IPU time   : {result.device_time_s * 1e3:.3f} ms")
    print(f"  host wall time     : {result.wall_time_s:.3f} s (simulation overhead)")
    print(f"  augmenting paths   : {result.stats['augmentations']}")
    print(f"  slack updates      : {result.stats['slack_updates']}")
    print(f"  BSP supersteps     : {result.stats['supersteps']}")
    print("\nPer-step modeled time (ms):")
    for step, seconds in result.stats["step_seconds"].items():
        print(f"  {step:<10} {seconds * 1e3:8.4f}")
    if not matches:
        raise SystemExit("oracle mismatch — this is a bug")
    print("\nFirst ten matches (row -> column):")
    for row in range(min(10, size)):
        print(f"  {row} -> {result.assignment[row]}")


if __name__ == "__main__":
    main()
