#!/usr/bin/env python3
"""A tour of the simulated IPU programming model (§III).

Demonstrates, without any Hungarian machinery, the concepts HunIPU is built
from: explicit tile mappings, codelet vertices grouped into compute sets,
BSP supersteps with compute/sync/exchange accounting, on-device control
flow (RepeatWhileTrue), and the compiler's tile-memory check (C2).

Run:  python examples/ipu_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.errors import TileMemoryError
from repro.ipu import (
    ComputeGraph,
    Engine,
    Execute,
    IPUSpec,
    RepeatWhileTrue,
    Sequence,
    TileMapping,
)
from repro.ipu.oplib import AddToScalar, Fill, ScalarCompare, build_reduce


def main() -> None:
    spec = IPUSpec.mk2()
    print(
        f"device: {spec.num_tiles} tiles x {spec.threads_per_tile} threads, "
        f"{spec.tile_memory_bytes // 1024} KiB SRAM per tile, "
        f"{spec.clock_hz / 1e9:.3f} GHz"
    )

    # --- 1. Tensors live on explicit tiles (1D row decomposition). --------
    graph = ComputeGraph(spec)
    n, tiles = 1024, 256
    matrix = graph.add_tensor(
        "matrix",
        (n, n),
        np.float32,
        mapping=TileMapping.row_blocks((n, n), range(tiles)),
    )
    print(f"mapped a {n}x{n} float32 matrix over {tiles} tiles "
          f"({n // tiles} rows each)")

    # --- 2. Compute sets: one vertex per tile, one BSP superstep. ---------
    fill = graph.add_compute_set("fill")
    codelet = Fill()
    rows_per_tile = n // tiles
    for tile in range(tiles):
        fill.add_vertex(
            codelet,
            tile,
            {"data": ComputeGraph.rows(matrix, tile * rows_per_tile,
                                       (tile + 1) * rows_per_tile)},
            params={"value": float(tile)},
        )

    # --- 3. A distributed reduction (per-tile partials -> one tile). ------
    total = graph.add_scalar("total", np.float32)
    reduce_program = build_reduce(graph, matrix, "max", total, "max_of_matrix")

    # --- 4. On-device control flow: loop until a counter hits 10. ---------
    counter = graph.add_scalar("counter")
    keep_going = graph.add_scalar("keep_going")
    bump = graph.add_compute_set("bump")
    bump.add_vertex(AddToScalar(), 0, {"out": ComputeGraph.full(counter)},
                    params={"value": 1})
    check = graph.add_compute_set("check")
    check.add_vertex(
        ScalarCompare("lt", 10),
        0,
        {"a": ComputeGraph.full(counter), "flag": ComputeGraph.full(keep_going)},
    )
    loop = Sequence(
        Execute(check),
        RepeatWhileTrue(keep_going, Sequence(Execute(bump), Execute(check))),
    )

    program = Sequence(Execute(fill), reduce_program, loop)
    engine = Engine(graph, program)
    report = engine.run()

    assert total.read_host()[0] == float(tiles - 1)
    assert counter.read_host()[0] == 10
    print(f"max over matrix = {total.read_host()[0]} (expected {tiles - 1}.0)")
    print(f"loop counter    = {counter.read_host()[0]} (10 iterations on device)")
    print(f"\nBSP accounting over {report.supersteps} supersteps:")
    print(report.format_table())

    # --- 5. The compiler enforces the 624 KiB tile budget (C2). -----------
    crowded = ComputeGraph(spec)
    crowded.add_tensor(
        "too_big",
        (n, n),
        np.float64,
        mapping=TileMapping.single_tile(n * n),  # 8 MiB on one tile
    )
    try:
        Engine(crowded, Sequence())
    except TileMemoryError as error:
        print(f"\ncompiler rejected an over-mapped tensor, as expected:\n  {error}")


if __name__ == "__main__":
    main()
