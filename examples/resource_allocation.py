#!/usr/bin/env python3
"""Resource allocation: assigning jobs to workers at minimum total cost.

The paper's introduction motivates the Hungarian algorithm with resource
allocation (e.g. multi-user channel loading).  This example builds a
synthetic scheduling scenario — workers with heterogeneous speeds, jobs
with heterogeneous demands, cost = completion time — solves it with
HunIPU, and contrasts the optimal assignment with the greedy heuristic a
practitioner might reach for first.

Run:  python examples/resource_allocation.py [num_workers]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import HunIPUSolver, LAPInstance


def build_costs(size: int, rng: np.random.Generator) -> np.ndarray:
    """Completion-time matrix: job demand divided by worker speed, plus a
    setup cost when worker and job are in different zones."""
    speeds = rng.uniform(0.5, 2.0, size)  # per worker
    demands = rng.uniform(1.0, 10.0, size)  # per job
    worker_zone = rng.integers(0, 4, size)
    job_zone = rng.integers(0, 4, size)
    base = demands[None, :] / speeds[:, None]
    transfer = 3.0 * (worker_zone[:, None] != job_zone[None, :])
    return base + transfer


def greedy_total(costs: np.ndarray) -> float:
    """Row-by-row greedy baseline: each worker takes its cheapest free job."""
    taken = np.zeros(costs.shape[1], dtype=bool)
    total = 0.0
    for row in range(costs.shape[0]):
        free = np.flatnonzero(~taken)
        pick = free[np.argmin(costs[row, free])]
        taken[pick] = True
        total += costs[row, pick]
    return total


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    rng = np.random.default_rng(7)
    costs = build_costs(size, rng)
    instance = LAPInstance(costs, name="resource-allocation")

    result = HunIPUSolver().solve(instance)
    greedy = greedy_total(costs)

    print(f"{size} workers x {size} jobs (completion-time costs)")
    print(f"  greedy total completion time : {greedy:10.3f}")
    print(f"  optimal (HunIPU) total       : {result.total_cost:10.3f}")
    saving = (greedy - result.total_cost) / greedy
    print(f"  saving over greedy           : {saving:10.1%}")
    print(f"  modeled IPU time             : {result.device_time_s * 1e3:.3f} ms")

    loads = costs[np.arange(size), result.assignment]
    print(f"  busiest worker finishes at   : {loads.max():10.3f}")
    print(f"  idlest worker finishes at    : {loads.min():10.3f}")
    assert result.total_cost <= greedy + 1e-9, "optimal cannot lose to greedy"


if __name__ == "__main__":
    main()
