#!/usr/bin/env python3
"""Breadth-first search on the simulated IPU.

The paper's conclusion argues "IPUs are also amenable to algorithms beyond
standard machine learning tasks" and cites IPU BFS traversals among the
prior wins.  This example shows the substrate is not Hungarian-specific:
a level-synchronous BFS written directly against `repro.ipu` — adjacency
rows 1D-mapped over tiles (the same decomposition HunIPU uses), one
frontier-expansion compute set per level, on-device termination via a
RepeatWhileTrue on the frontier size.

Run:  python examples/bfs_on_ipu.py [nodes] [tiles]
"""

from __future__ import annotations

import sys

import networkx as nx
import numpy as np

from repro.ipu import (
    ComputeGraph,
    Engine,
    Execute,
    IPUSpec,
    RepeatWhileTrue,
    Sequence,
    TileMapping,
)
from repro.ipu.codelets import Codelet, CostContext
from repro.ipu.oplib import build_reduce
from repro.ipu.oplib import ScalarCompare


class FrontierExpand(Codelet):
    """One tile's BFS relaxation: unvisited neighbours of frontier nodes.

    Reads the (broadcast) global frontier and distance vectors, scans the
    local adjacency rows, and proposes new distances for its own nodes.
    """

    fields = {
        "adjacency": "in",
        "frontier": "in",
        "distance": "in",
        "next_frontier": "out",
    }

    def compute_all(self, views, params, cost: CostContext) -> np.ndarray:
        nodes = int(params["nodes"][0])
        adjacency = views["adjacency"]
        batch = adjacency.shape[0]
        rows = adjacency.shape[1] // nodes
        local = adjacency.reshape(batch, rows, nodes)
        frontier = views["frontier"][0].astype(bool)
        distance = views["distance"]  # (batch, rows): local slice
        reachable = (local & frontier[None, None, :]).any(axis=2)
        fresh = reachable & (distance < 0)
        views["next_frontier"][...] = fresh
        edges_scanned = local.sum(axis=(1, 2))
        return np.ceil(
            (edges_scanned + rows) * cost.cycles_per_alu_op / cost.threads_per_tile
        )


class AdoptFrontier(Codelet):
    """Commit the proposed frontier: set distances, roll the level."""

    fields = {
        "next_frontier": "in",
        "distance": "inout",
        "frontier_out": "out",
        "level": "in",
    }

    def compute_all(self, views, params, cost: CostContext) -> np.ndarray:
        fresh = views["next_frontier"].astype(bool)
        level = int(views["level"][0, 0])
        distance = views["distance"]
        distance[fresh] = level
        views["frontier_out"][...] = fresh
        return np.full(fresh.shape[0], float(fresh.shape[1]))


class BumpLevel(Codelet):
    fields = {"level": "inout"}

    def compute_all(self, views, params, cost: CostContext) -> np.ndarray:
        views["level"][:, 0] += 1
        return np.ones(views["level"].shape[0])


def bfs_on_ipu(graph: nx.Graph, source: int, num_tiles: int = 8):
    """Level-synchronous BFS; returns (distances, profile report)."""
    nodes = graph.number_of_nodes()
    spec = IPUSpec.toy(num_tiles=num_tiles)
    adjacency = nx.to_numpy_array(graph, nodelist=range(nodes), dtype=np.int8)

    cg = ComputeGraph(spec)
    tiles = min(num_tiles, nodes)
    while nodes % tiles:
        tiles -= 1
    rows_per_tile = nodes // tiles
    adj = cg.add_tensor(
        "adjacency", (nodes, nodes), np.int8,
        mapping=TileMapping.row_blocks((nodes, nodes), range(tiles)),
    )
    row_map = TileMapping.row_blocks((nodes, 1), range(tiles))
    distance = cg.add_tensor("distance", (nodes,), np.int32, mapping=row_map)
    frontier = cg.add_tensor("frontier", (nodes,), np.int8, mapping=row_map)
    proposed = cg.add_tensor("proposed", (nodes,), np.int8, mapping=row_map)
    level = cg.add_scalar("level")
    frontier_size = cg.add_scalar("frontier_size")
    keep_going = cg.add_scalar("keep_going")

    expand = cg.add_compute_set("bfs/expand")
    adopt = cg.add_compute_set("bfs/adopt")
    expand_codelet, adopt_codelet = FrontierExpand(), AdoptFrontier()
    for index in range(tiles):
        start, stop = index * rows_per_tile, (index + 1) * rows_per_tile
        expand.add_vertex(
            expand_codelet,
            index,
            {
                "adjacency": ComputeGraph.rows(adj, start, stop),
                "frontier": ComputeGraph.full(frontier),
                "distance": ComputeGraph.span(distance, start, stop),
                "next_frontier": ComputeGraph.span(proposed, start, stop),
            },
            params={"nodes": nodes},
        )
        adopt.add_vertex(
            adopt_codelet,
            index,
            {
                "next_frontier": ComputeGraph.span(proposed, start, stop),
                "distance": ComputeGraph.span(distance, start, stop),
                "frontier_out": ComputeGraph.span(frontier, start, stop),
                "level": ComputeGraph.full(level),
            },
        )
    bump = cg.add_compute_set("bfs/bump")
    bump.add_vertex(BumpLevel(), 0, {"level": ComputeGraph.full(level)})
    count = build_reduce(cg, frontier, "sum", frontier_size, "bfs/frontier_size")
    check = cg.add_compute_set("bfs/check")
    check.add_vertex(
        ScalarCompare("gt", 0),
        0,
        {"a": ComputeGraph.full(frontier_size), "flag": ComputeGraph.full(keep_going)},
    )
    body = Sequence(
        Execute(expand), Execute(adopt), Execute(bump), count, Execute(check)
    )
    program = Sequence(count, Execute(check), RepeatWhileTrue(keep_going, body))
    engine = Engine(cg, program)

    adj.write_host(adjacency)
    distance.write_host(-1)
    distances_init = np.full(nodes, -1, dtype=np.int32)
    distances_init[source] = 0
    distance.write_host(distances_init)
    frontier_init = np.zeros(nodes, dtype=np.int8)
    frontier_init[source] = 1
    frontier.write_host(frontier_init)
    level.write_host(1)
    report = engine.run()
    return distance.read_host(), report


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    tiles = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    graph = nx.connected_watts_strogatz_graph(nodes, 6, 0.15, seed=3)
    distances, report = bfs_on_ipu(graph, source=0, num_tiles=tiles)
    expected = nx.single_source_shortest_path_length(graph, 0)
    matches = all(distances[node] == hops for node, hops in expected.items())
    print(f"BFS over {nodes} nodes on {tiles} simulated tiles")
    print(f"  distances match networkx : {matches}")
    print(f"  eccentricity from source : {distances.max()}")
    print(f"  BSP supersteps           : {report.supersteps}")
    print(f"  modeled device time      : {report.device_seconds * 1e6:.2f} us")
    if not matches:
        raise SystemExit("BFS mismatch — this is a bug")


if __name__ == "__main__":
    main()
