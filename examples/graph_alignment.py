#!/usr/bin/env python3
"""Graph alignment end to end — the paper's use case (§V-C).

Loads a (stand-in) real-world network, builds a noisy copy with shuffled
labels, computes the GRAMPA similarity matrix, and recovers the hidden node
correspondence with three Hungarian solvers: HunIPU on the simulated IPU,
FastHA on the simulated A100 (with the paper's 2^m zero-padding), and the
CPU LAPJV solver.  Prints Table-III-style runtimes plus alignment accuracy.

Run:  python examples/graph_alignment.py [dataset] [scale] [retention]
      e.g. python examples/graph_alignment.py HighSchool 0.25 0.95
"""

from __future__ import annotations

import sys

from repro import FastHASolver, HunIPUSolver, LAPJVSolver
from repro.alignment import align_noisy_copy, noisy_copy
from repro.data import load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "HighSchool"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    retention = float(sys.argv[3]) if len(sys.argv) > 3 else 0.95

    graph = load_dataset(dataset, scale=scale)
    print(
        f"{dataset} stand-in at scale {scale}: "
        f"{graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges"
    )
    noisy = noisy_copy(graph, retention, rng=17)
    print(
        f"noisy copy keeps {noisy.kept_edges}/{noisy.original_edges} edges "
        f"({retention:.0%}), labels shuffled\n"
    )

    runs = [
        ("HunIPU (simulated Mk2 IPU)", HunIPUSolver(), False),
        ("FastHA (simulated A100, 2^m-padded)", FastHASolver(), True),
        ("LAPJV (host CPU)", LAPJVSolver(), False),
    ]
    print(f"{'solver':<38} {'LAP size':>8} {'device ms':>10} {'accuracy':>9}")
    for label, solver, padded in runs:
        result, accuracy = align_noisy_copy(
            graph, noisy, solver, pad_power_of_two=padded
        )
        device = result.device_time_s
        device_text = f"{device * 1e3:.2f}" if device is not None else "host"
        print(
            f"{label:<38} {result.padded_size:>8} {device_text:>10} "
            f"{accuracy:>9.3f}"
        )
    print(
        "\nAll solvers solve the same LAP optimally, so accuracies match; "
        "what differs is the modeled Hungarian runtime (Table III's metric)."
    )


if __name__ == "__main__":
    main()
